// Package explore is a stateless model checker for mutex.Instance sets:
// instead of the single FIFO ordering the discrete-event simulator
// produces, it drives a system of algorithm instances through *all*
// (bounded) delivery orderings of their messages, plus optional fault
// actions (duplication, loss), and checks the mutual exclusion properties
// on every schedule.
//
// The checker is stateless in the model-checking sense: algorithm
// instances cannot be snapshotted, so every schedule re-executes the
// system from its initial state. A schedule is a sequence of Choices
// (deliver the head of a link, duplicate it, drop it, issue a request,
// release the critical section); executions are deterministic, so a
// serialized schedule replays byte-for-byte.
//
// Two schedulers are provided: ExploreDFS enumerates the choice tree
// depth-first with a state-fingerprint cache pruning revisits, and
// ExploreRandom samples it with seeded PCT-style randomized priorities for
// configurations too large to exhaust. Violations come back as a
// Counterexample — a JSON-serializable schedule that Replay re-executes
// and Minimize shrinks.
package explore

import (
	"fmt"
	"sort"
	"strings"

	"gridmutex/internal/algorithms/algotest"
	"gridmutex/internal/check"
	"gridmutex/internal/des"
	"gridmutex/internal/mutex"
)

// Options bound and shape an exploration.
type Options struct {
	// RequestsPerApp is how many critical sections each application
	// endpoint executes (default 1).
	RequestsPerApp int
	// MaxSteps bounds the length of one schedule (default 256).
	// Schedules cut at the bound count as truncated, not violating.
	MaxSteps int
	// MaxSchedules bounds how many schedules ExploreDFS executes and how
	// many ExploreRandom samples (default 100000 for DFS, 200 for
	// random).
	MaxSchedules int
	// MaxDuplicates and MaxDrops budget fault actions per schedule
	// (default 0: reliable exactly-once channels, only reordered).
	MaxDuplicates int
	MaxDrops      int
	// MaxCrashes budgets fail-stop crashes of application endpoints per
	// schedule (default 0). A crashed endpoint stops sending, its inbound
	// messages vanish, and it never releases a critical section it holds.
	// With crashes possible the exploration checks SAFETY ONLY: the
	// step-bounded liveness assertion and the terminal completion checks
	// are disabled, because losing the token to a crash legitimately
	// stalls the survivors of a bare algorithm (recovering is
	// internal/recovery's job, out of scope for the raw protocol model).
	MaxCrashes int
	// MaxRestarts budgets restarts of crashed endpoints per schedule
	// (default 0). A restart models internal/recovery's rejoin resync
	// epoch: every live member's instance is rebuilt from scratch (the
	// builder's rebuild hooks; see SetRebuild) with a designated holder
	// that is never the restarted node — its pre-crash token claim must
	// not resurrect — all in-flight messages are purged (the epoch fence
	// discards traffic from the previous epoch), members with an
	// outstanding request get it re-issued as a future request step, and
	// the restarted endpoint recovers the requests its crash forfeited.
	// Restarts are only enabled on crashed endpoints while no live member
	// is inside the critical section (cross-epoch CS adoption is the
	// recovery layer's business, out of scope for the raw protocol
	// model), so a positive budget is useless without MaxCrashes.
	MaxRestarts int
	// MaxPartitions budgets single-node partition cuts per schedule
	// (default 0). A cut isolates one endpoint: messages crossing it in
	// either direction are discarded when delivered (delivery-time
	// classification, like simnet), until a heal step removes the cut.
	// Like crashes, partitions make the exploration safety-only — the
	// token may die on the wire across the cut.
	MaxPartitions int
	// ReorderWithinLink also explores non-FIFO delivery inside one
	// (sender, receiver) link. The mutex.Env contract promises per-link
	// FIFO, so this is off by default; it exists to stress transports
	// and deliberately broken fixtures.
	ReorderWithinLink bool
	// NoPrune disables the state-fingerprint cache (see DESIGN.md
	// "Schedule exploration" for the soundness trade-off it documents).
	NoPrune bool
	// LivenessBound is K of check.StepLiveness: with no message in
	// flight, a waiting request must be granted within K further steps
	// (default 32).
	LivenessBound int
	// CheckTokenHolders enables the terminal quiescence check that
	// exactly WantTokenHolders application endpoints report
	// HoldsToken() — 1 for a flat token algorithm, 0 for a
	// permission-based one. Leave false for compositions, where tokens
	// legitimately rest at coordinators.
	CheckTokenHolders bool
	WantTokenHolders  int
	// Seed drives ExploreRandom's priorities (deterministic per seed).
	Seed int64
	// PriorityChangePoints is the number of PCT priority-change points
	// per random schedule (default 3).
	PriorityChangePoints int
}

func (o Options) fill() Options {
	if o.RequestsPerApp <= 0 {
		o.RequestsPerApp = 1
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 256
	}
	if o.LivenessBound <= 0 {
		o.LivenessBound = 32
	}
	if o.PriorityChangePoints <= 0 {
		o.PriorityChangePoints = 3
	}
	return o
}

// faulty reports whether the options admit token-destroying faults, which
// makes the exploration safety-only (see MaxCrashes and MaxPartitions).
func (o Options) faulty() bool { return o.MaxCrashes > 0 || o.MaxPartitions > 0 }

// budget tracks the per-schedule fault allowances as they are consumed.
type budget struct {
	dups, drops, crashes, restarts, parts int
}

func (o Options) budget() budget {
	return budget{
		dups: o.MaxDuplicates, drops: o.MaxDrops,
		crashes: o.MaxCrashes, restarts: o.MaxRestarts, parts: o.MaxPartitions,
	}
}

// use consumes the budget a choice spends. OpHeal is free: every heal is
// preceded by a budgeted cut, so alternation stays bounded.
func (b *budget) use(c Choice) {
	switch c.Op {
	case OpDuplicate:
		b.dups--
	case OpDrop:
		b.drops--
	case OpCrash:
		b.crashes--
	case OpRestart:
		b.restarts--
	case OpPartition:
		b.parts--
	}
}

// String renders the remaining budget canonically for fingerprint keys.
func (b budget) String() string {
	return fmt.Sprintf("%d/%d/%d/%d/%d/", b.dups, b.drops, b.crashes, b.restarts, b.parts)
}

// app is one drivable application endpoint.
type app struct {
	id        mutex.ID
	inst      mutex.Instance
	remaining int // requests not yet issued
	lost      int // requests forfeited by a crash, restored on restart
	granted   int
	crashed   bool
	rebuild   func(holder mutex.ID) (mutex.Instance, error) // resync-epoch rebuild hook
}

// System is one freshly built instance of the model under exploration: a
// hand-stepped world plus the application endpoints whose Request/Release
// the scheduler chooses among. Builders construct the instances, register
// message routing on World, and declare drivable endpoints with AddApp.
type System struct {
	// World queues every send for the scheduler to order.
	World *algotest.World

	apps   []*app
	byID   map[mutex.ID]*app
	probes []func() string
	mon    *check.Monitor
	live   *check.StepLiveness
	steps  int
}

// NewSystem returns an empty system with a fresh world and monitor.
func NewSystem() *System {
	s := &System{World: algotest.NewWorld(), byID: make(map[mutex.ID]*app)}
	s.mon = check.NewMonitorWithClock(s)
	return s
}

// Now implements check.Clock: the schedule step counter, so violation
// messages name the step they occurred at.
func (s *System) Now() des.Time { return des.Time(s.steps) }

// Monitor exposes the property monitor (violations accumulate there).
func (s *System) Monitor() *check.Monitor { return s.mon }

// Callbacks returns the mutex.Callbacks the application instance for id
// must be constructed with, so the explorer observes its critical section
// entries.
func (s *System) Callbacks(id mutex.ID) mutex.Callbacks {
	return mutex.Callbacks{OnAcquire: func() {
		a := s.byID[id]
		if a == nil {
			s.mon.Reportf("protocol: OnAcquire for unregistered app %d", id)
			return
		}
		if a.inst.State() != mutex.InCS {
			s.mon.Reportf("protocol: app %d OnAcquire fired but State() = %v", id, a.inst.State())
		}
		s.mon.Enter(id)
		a.granted++
	}}
}

// AddApp declares a drivable application endpoint. The instance must have
// been built with Callbacks(id).
func (s *System) AddApp(id mutex.ID, inst mutex.Instance) {
	if _, dup := s.byID[id]; dup {
		panic(fmt.Sprintf("explore: app %d added twice", id))
	}
	a := &app{id: id, inst: inst}
	s.apps = append(s.apps, a)
	s.byID[id] = a
}

// AddHandler registers a message sink in the world that is routed
// deliveries but never driven — composition processes that multiplex
// instances behind one endpoint.
func (s *System) AddHandler(id mutex.ID, h mutex.Handler) {
	s.World.Add(id, h)
}

// SetRebuild registers the resync-epoch rebuild hook for a drivable
// endpoint: a deterministic constructor of a fresh instance seeded with
// the designated epoch holder. OpRestart rebuilds EVERY live member
// through these hooks (the rejoin resync epoch reconstructs the group's
// inner state consistently everywhere), so restarts are only enabled
// when the restarting endpoint and all live endpoints have hooks.
func (s *System) SetRebuild(id mutex.ID, f func(holder mutex.ID) (mutex.Instance, error)) {
	a := s.byID[id]
	if a == nil {
		panic(fmt.Sprintf("explore: SetRebuild for unknown app %d", id))
	}
	a.rebuild = f
}

// AddProbe registers an extra fingerprint contributor. The default
// fingerprint only sees drivable apps and in-flight messages; builders for
// composed systems should register probes exposing the coordinator and
// level-instance state hidden behind the process dispatchers, so the
// pruning cache does not conflate states that differ only there.
func (s *System) AddProbe(f func() string) {
	s.probes = append(s.probes, f)
}

// Builder constructs a fresh System for one schedule execution. The
// checker is stateless — it rebuilds the system for every schedule — so
// the builder must be deterministic.
type Builder func() (*System, error)

// FlatBuilder returns a Builder for a flat n-participant instance of
// factory with member IDs 0..n-1 and participant 0 the initial holder.
// Every endpoint gets a rebuild hook, so restart steps (the resync-epoch
// model; see Options.MaxRestarts) are available under a MaxRestarts
// budget.
func FlatBuilder(factory mutex.Factory, n int) Builder {
	return func() (*System, error) {
		sys := NewSystem()
		members := make([]mutex.ID, n)
		for i := range members {
			members[i] = mutex.ID(i)
		}
		for _, id := range members {
			id := id
			inst, err := factory(mutex.Config{
				Self: id, Members: members, Holder: 0,
				Env: sys.World.Env(id), Callbacks: sys.Callbacks(id),
			})
			if err != nil {
				return nil, err
			}
			sys.World.Add(id, inst)
			sys.AddApp(id, inst)
			sys.SetRebuild(id, func(holder mutex.ID) (mutex.Instance, error) {
				return factory(mutex.Config{
					Self: id, Members: members, Holder: holder,
					Env: sys.World.Env(id), Callbacks: sys.Callbacks(id),
				})
			})
		}
		return sys, nil
	}
}

// anyInCS reports whether some live app is inside the critical section —
// restart steps are gated off such states (see Options.MaxRestarts).
func (s *System) anyInCS() bool {
	for _, a := range s.apps {
		if !a.crashed && a.inst.State() == mutex.InCS {
			return true
		}
	}
	return false
}

// allRebuildable reports whether every live app has a rebuild hook — the
// resync epoch rebuilds all of them, so one missing hook disables
// restarts entirely.
func (s *System) allRebuildable() bool {
	for _, a := range s.apps {
		if !a.crashed && a.rebuild == nil {
			return false
		}
	}
	return true
}

// waiting counts apps with an ungranted request.
func (s *System) waiting() int {
	n := 0
	for _, a := range s.apps {
		if !a.crashed && a.inst.State() == mutex.Req {
			n++
		}
	}
	return n
}

// Op is the kind of one schedule step.
type Op string

const (
	// OpDeliver delivers the Idx-th in-flight message of link From→To
	// (Idx is 0 unless ReorderWithinLink).
	OpDeliver Op = "deliver"
	// OpDuplicate re-enqueues a copy of the head of link From→To.
	OpDuplicate Op = "dup"
	// OpDrop discards the head of link From→To undelivered.
	OpDrop Op = "drop"
	// OpRequest makes app Node issue its next critical section request.
	OpRequest Op = "request"
	// OpRelease makes app Node leave the critical section.
	OpRelease Op = "release"
	// OpCrash fail-stops app Node (see Options.MaxCrashes).
	OpCrash Op = "crash"
	// OpRestart revives crashed app Node with a fresh amnesiac instance
	// (see Options.MaxRestarts).
	OpRestart Op = "restart"
	// OpPartition isolates app Node behind a cut (see
	// Options.MaxPartitions).
	OpPartition Op = "partition"
	// OpHeal removes the active cut.
	OpHeal Op = "heal"
)

// Choice is one schedule step. Delivery choices address messages by link
// and position rather than by raw queue index, so a serialized schedule
// stays meaningful under minimization.
type Choice struct {
	Op   Op       `json:"op"`
	From mutex.ID `json:"from,omitempty"`
	To   mutex.ID `json:"to,omitempty"`
	Idx  int      `json:"idx,omitempty"`
	Node mutex.ID `json:"node,omitempty"`
}

// String renders the choice for humans.
func (c Choice) String() string {
	switch c.Op {
	case OpHeal:
		return string(c.Op)
	case OpRequest, OpRelease, OpCrash, OpRestart, OpPartition:
		return fmt.Sprintf("%s(%d)", c.Op, c.Node)
	case OpDeliver:
		if c.Idx != 0 {
			return fmt.Sprintf("%s(%d->%d #%d)", c.Op, c.From, c.To, c.Idx)
		}
		fallthrough
	default:
		return fmt.Sprintf("%s(%d->%d)", c.Op, c.From, c.To)
	}
}

// Schedule is a sequence of choices from the initial state.
type Schedule []Choice

// String renders the schedule compactly.
func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ")
}

// link identifies an ordered sender/receiver pair.
type link struct{ from, to mutex.ID }

// links returns the links with in-flight messages, each with its queued
// message count, in order of each link's oldest message (deterministic and
// independent of how the queue happens to interleave links).
func (s *System) links() ([]link, map[link]int) {
	counts := make(map[link]int)
	var order []link
	for _, m := range s.World.Inflight() {
		l := link{m.From, m.To}
		if counts[l] == 0 {
			order = append(order, l)
		}
		counts[l]++
	}
	return order, counts
}

// enabled enumerates the choices available in the current state, in a
// fixed deterministic order: deliveries, duplications, drops, crashes,
// restarts, partition cuts, heal, releases, requests.
func (s *System) enabled(o Options, bud budget) []Choice {
	var out []Choice
	order, counts := s.links()
	for _, l := range order {
		out = append(out, Choice{Op: OpDeliver, From: l.from, To: l.to})
		if o.ReorderWithinLink {
			for i := 1; i < counts[l]; i++ {
				out = append(out, Choice{Op: OpDeliver, From: l.from, To: l.to, Idx: i})
			}
		}
	}
	if bud.dups > 0 {
		for _, l := range order {
			out = append(out, Choice{Op: OpDuplicate, From: l.from, To: l.to})
		}
	}
	if bud.drops > 0 {
		for _, l := range order {
			out = append(out, Choice{Op: OpDrop, From: l.from, To: l.to})
		}
	}
	if bud.crashes > 0 {
		for _, a := range s.apps {
			if !a.crashed {
				out = append(out, Choice{Op: OpCrash, Node: a.id})
			}
		}
	}
	if bud.restarts > 0 && !s.anyInCS() && s.allRebuildable() {
		for _, a := range s.apps {
			if a.crashed && a.rebuild != nil {
				out = append(out, Choice{Op: OpRestart, Node: a.id})
			}
		}
	}
	_, cut := s.World.Isolated()
	if bud.parts > 0 && !cut {
		for _, a := range s.apps {
			if !a.crashed {
				out = append(out, Choice{Op: OpPartition, Node: a.id})
			}
		}
	}
	if cut {
		out = append(out, Choice{Op: OpHeal})
	}
	for _, a := range s.apps {
		if !a.crashed && a.inst.State() == mutex.InCS {
			out = append(out, Choice{Op: OpRelease, Node: a.id})
		}
	}
	for _, a := range s.apps {
		if !a.crashed && a.remaining > 0 && a.inst.State() == mutex.NoReq {
			out = append(out, Choice{Op: OpRequest, Node: a.id})
		}
	}
	return out
}

// linkIndex locates the global inflight index of the idx-th message on
// link from→to, or -1.
func (s *System) linkIndex(from, to mutex.ID, idx int) int {
	seen := 0
	for i, m := range s.World.Inflight() {
		if m.From == from && m.To == to {
			if seen == idx {
				return i
			}
			seen++
		}
	}
	return -1
}

// apply executes one choice. Inapplicable choices (replaying a foreign or
// minimized schedule) return an error; panics out of instances — protocol
// violations a fault action provoked — are converted into monitor
// violations.
func (s *System) apply(c Choice) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.mon.Reportf("panic at step %d applying %s: %v", s.steps, c, r)
		}
	}()
	s.steps++
	switch c.Op {
	case OpDeliver, OpDuplicate, OpDrop:
		idx := 0
		if c.Op == OpDeliver {
			idx = c.Idx
		}
		g := s.linkIndex(c.From, c.To, idx)
		if g < 0 {
			return fmt.Errorf("explore: step %d: no message #%d in flight on %d->%d", s.steps, idx, c.From, c.To)
		}
		switch c.Op {
		case OpDeliver:
			s.World.DeliverAt(g)
		case OpDuplicate:
			s.World.DuplicateAt(g)
		case OpDrop:
			s.World.DropAt(g)
		}
	case OpRequest:
		a := s.byID[c.Node]
		if a == nil || a.crashed || a.remaining <= 0 || a.inst.State() != mutex.NoReq {
			return fmt.Errorf("explore: step %d: request(%d) not enabled", s.steps, c.Node)
		}
		a.remaining--
		a.inst.Request()
		s.World.Settle()
	case OpRelease:
		a := s.byID[c.Node]
		if a == nil || a.crashed || a.inst.State() != mutex.InCS {
			return fmt.Errorf("explore: step %d: release(%d) not enabled", s.steps, c.Node)
		}
		s.mon.Exit(c.Node)
		a.inst.Release()
		s.World.Settle()
	case OpCrash:
		a := s.byID[c.Node]
		if a == nil || a.crashed {
			return fmt.Errorf("explore: step %d: crash(%d) not enabled", s.steps, c.Node)
		}
		a.crashed = true
		a.lost = a.remaining
		a.remaining = 0
		s.mon.Crashed(c.Node) // vacates the CS if the victim holds it
		s.World.Crash(c.Node)
	case OpRestart:
		a := s.byID[c.Node]
		if a == nil || !a.crashed || a.rebuild == nil {
			return fmt.Errorf("explore: step %d: restart(%d) not enabled", s.steps, c.Node)
		}
		if s.anyInCS() {
			return fmt.Errorf("explore: step %d: restart(%d) while a member is in the critical section", s.steps, c.Node)
		}
		// The resync epoch: the restarted node comes back amnesiac, the
		// epoch fence discards every message of the previous epoch, and
		// every live member rebuilds its instance around a designated
		// holder — the lowest live member other than the restarter, so its
		// dead claim never resurrects. Members that were requesting get
		// the request re-issued (recovery re-requests on behalf of a
		// requesting owner) as a future request step.
		a.crashed = false
		a.remaining = a.lost
		a.lost = 0
		holder := c.Node
		for _, b := range s.apps {
			if b.id != c.Node && !b.crashed && (holder == c.Node || b.id < holder) {
				holder = b.id
			}
		}
		s.World.Restart(c.Node)
		s.World.PurgeInflight()
		for _, b := range s.apps {
			if b.crashed {
				continue
			}
			if b.rebuild == nil {
				return fmt.Errorf("explore: step %d: restart(%d): live app %d has no rebuild hook", s.steps, c.Node, b.id)
			}
			if b.id != c.Node && b.inst.State() == mutex.Req {
				b.remaining++
			}
			inst, err := b.rebuild(holder)
			if err != nil {
				return fmt.Errorf("explore: step %d: rebuilding app %d: %w", s.steps, b.id, err)
			}
			b.inst = inst
			s.World.Replace(b.id, inst)
		}
		s.mon.Restarted(c.Node)
		s.World.Settle()
	case OpPartition:
		if _, cut := s.World.Isolated(); cut {
			return fmt.Errorf("explore: step %d: partition(%d) with a cut already active", s.steps, c.Node)
		}
		a := s.byID[c.Node]
		if a == nil || a.crashed {
			return fmt.Errorf("explore: step %d: partition(%d) not enabled", s.steps, c.Node)
		}
		s.World.Isolate(c.Node)
	case OpHeal:
		if _, cut := s.World.Isolated(); !cut {
			return fmt.Errorf("explore: step %d: heal with no active cut", s.steps)
		}
		s.World.Heal()
	default:
		return fmt.Errorf("explore: step %d: unknown op %q", s.steps, c.Op)
	}
	if s.live != nil {
		s.live.Step(s.waiting(), len(s.World.Inflight()))
	}
	return nil
}

// fingerprint renders the observable state canonically: per-app protocol
// state in registration order, then per-link in-flight queues in sorted
// link order (the cross-link interleaving of the raw queue is behaviorally
// irrelevant). Message payloads are rendered with %#v — messages are plain
// self-contained structs (enforced by gridlint's msgpurity pass), so the
// rendering is deterministic. Probes registered with AddProbe contribute
// between the two. Hidden instance variables not reflected in protocol
// state, probes, or pending messages are NOT captured; see DESIGN.md for
// the pruning caveat this implies.
func (s *System) fingerprint() string {
	var b strings.Builder
	for _, a := range s.apps {
		fmt.Fprintf(&b, "%d:%d%t%t%t:%d:%d;", a.id, a.inst.State(), a.inst.HoldsToken(), a.inst.HasPending(), a.crashed, a.remaining, a.granted)
	}
	for _, p := range s.probes {
		b.WriteString(p())
		b.WriteByte(';')
	}
	if iso, cut := s.World.Isolated(); cut {
		fmt.Fprintf(&b, "cut:%d;", iso)
	}
	b.WriteByte('|')
	order, _ := s.links()
	sort.Slice(order, func(i, j int) bool {
		if order[i].from != order[j].from {
			return order[i].from < order[j].from
		}
		return order[i].to < order[j].to
	})
	inflight := s.World.Inflight()
	for _, l := range order {
		fmt.Fprintf(&b, "%d>%d:", l.from, l.to)
		for _, m := range inflight {
			if m.From == l.from && m.To == l.to {
				fmt.Fprintf(&b, "%#v,", m.Msg)
			}
		}
		b.WriteByte(';')
	}
	return b.String()
}

// checkTerminal runs the quiescence assertions once no choice is enabled:
// nothing may remain requested or in the critical section, every budgeted
// request must have been issued and granted, entries must match exits, and
// optionally exactly WantTokenHolders apps hold a token. With a crash or
// partition budget the exploration is safety-only: completion checks would
// flag the legitimate stall of survivors waiting on a token that died with
// its holder (or on the wire across a cut), so only the monitor's own
// quiescence accounting runs.
func (s *System) checkTerminal(o Options) {
	if o.faulty() {
		s.mon.AssertQuiescent()
		return
	}
	for _, a := range s.apps {
		if st := a.inst.State(); st != mutex.NoReq {
			s.mon.Reportf("terminal: app %d stuck in state %v at step %d", a.id, st, s.steps)
		}
		if a.remaining > 0 {
			s.mon.Reportf("terminal: app %d never issued %d of its requests", a.id, a.remaining)
		}
		if a.granted != o.RequestsPerApp-a.remaining {
			s.mon.Reportf("terminal: app %d granted %d of %d issued requests", a.id, a.granted, o.RequestsPerApp-a.remaining)
		}
	}
	s.mon.AssertQuiescent()
	if o.CheckTokenHolders {
		holders := 0
		for _, a := range s.apps {
			if a.inst.HoldsToken() {
				holders++
			}
		}
		if holders != o.WantTokenHolders {
			s.mon.Reportf("terminal: %d token holders, want %d", holders, o.WantTokenHolders)
		}
	}
}

// start finalizes construction before the first step: boot callbacks run
// and the liveness assertion arms.
func (s *System) start(o Options) error {
	if len(s.apps) == 0 {
		return fmt.Errorf("explore: system has no drivable apps")
	}
	for _, a := range s.apps {
		a.remaining = o.RequestsPerApp
	}
	if !o.faulty() {
		// Safety-only under crashes and partitions: a stalled survivor is
		// expected, not a liveness bug (see Options.MaxCrashes).
		s.live = check.NewStepLiveness(s.mon, o.LivenessBound)
	}
	s.World.Settle()
	return nil
}

// build constructs and starts a fresh system.
func build(b Builder, o Options) (*System, error) {
	sys, err := b()
	if err != nil {
		return nil, err
	}
	if err := sys.start(o); err != nil {
		return nil, err
	}
	return sys, nil
}
