package livenet

import (
	"context"
	"sync"
	"testing"
	"time"

	"gridmutex/internal/core"
	"gridmutex/internal/mutex"
	"gridmutex/internal/topology"
)

// buildLive assembles a composed deployment on a live network and returns
// the handle set. The returned cleanup closes the network.
func buildLive(t *testing.T, grid *topology.Grid, spec core.Spec) (*Handles, func()) {
	t.Helper()
	net := New(Options{Latency: func(a, b int) time.Duration { return grid.OneWay(a, b) }, Scale: 200})
	hs := NewHandles(net)
	d, err := core.BuildComposed(net, grid, spec, hs.Callbacks)
	if err != nil {
		net.Close()
		t.Fatal(err)
	}
	hs.Bind(d.Apps)
	return hs, net.Close
}

// TestMutualExclusionUnderRace hammers the lock from many goroutines and
// checks that a deliberately racy critical section never interleaves.
func TestMutualExclusionUnderRace(t *testing.T) {
	grid := topology.Uniform(2, 4, time.Millisecond, 10*time.Millisecond)
	hs, cleanup := buildLive(t, grid, core.Spec{Intra: "naimi", Inter: "naimi"})
	defer cleanup()

	const iterations = 15
	var counter int // protected only by the distributed lock
	var inCS int32
	var wg sync.WaitGroup
	errs := make(chan error, 64)

	apps := []mutex.ID{1, 2, 3, 5, 6, 7} // node 0 and 4 are coordinators
	for _, id := range apps {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := hs.Get(id)
			for i := 0; i < iterations; i++ {
				if err := h.Lock(context.Background()); err != nil {
					errs <- err
					return
				}
				if n := inCS; n != 0 {
					t.Errorf("process %d entered CS while %d other(s) inside", id, n)
				}
				inCS++
				counter++
				time.Sleep(50 * time.Microsecond)
				inCS--
				h.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if want := len(apps) * iterations; counter != want {
		t.Fatalf("counter = %d, want %d", counter, want)
	}
}

func TestAllCompositionsLive(t *testing.T) {
	for _, spec := range []core.Spec{
		{Intra: "naimi", Inter: "martin"},
		{Intra: "suzuki", Inter: "naimi"},
		{Intra: "martin", Inter: "suzuki"},
		{Intra: "lamport", Inter: "ricart-agrawala"},
		{Intra: "ricart-agrawala", Inter: "lamport"},
	} {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			grid := topology.Uniform(2, 3, time.Millisecond, 8*time.Millisecond)
			hs, cleanup := buildLive(t, grid, spec)
			defer cleanup()
			var wg sync.WaitGroup
			for _, id := range []mutex.ID{1, 2, 4, 5} {
				id := id
				wg.Add(1)
				go func() {
					defer wg.Done()
					h := hs.Get(id)
					for i := 0; i < 8; i++ {
						if err := h.Lock(context.Background()); err != nil {
							t.Error(err)
							return
						}
						h.Unlock()
					}
				}()
			}
			wg.Wait()
		})
	}
}

func TestLockCancellation(t *testing.T) {
	grid := topology.Uniform(2, 2, time.Millisecond, 50*time.Millisecond)
	hs, cleanup := buildLive(t, grid, core.Spec{Intra: "naimi", Inter: "naimi"})
	defer cleanup()

	a, b := hs.Get(1), hs.Get(3)
	if err := a.Lock(context.Background()); err != nil {
		t.Fatal(err)
	}
	// b's lock cannot be served while a holds it; cancel it.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := b.Lock(ctx); err != context.DeadlineExceeded {
		t.Fatalf("cancelled Lock returned %v", err)
	}
	a.Unlock()
	// The background reaper releases b's eventual grant; the lock must
	// remain acquirable afterwards.
	deadline := time.After(5 * time.Second)
	done := make(chan struct{})
	go func() {
		if err := a.Lock(context.Background()); err != nil {
			t.Error(err)
		}
		a.Unlock()
		if err := b.Lock(context.Background()); err != nil {
			t.Error(err)
		}
		b.Unlock()
		close(done)
	}()
	select {
	case <-done:
	case <-deadline:
		t.Fatal("lock unusable after cancellation")
	}
}

func TestUnlockWithoutLockPanics(t *testing.T) {
	grid := topology.Uniform(2, 2, 0, 0)
	hs, cleanup := buildLive(t, grid, core.Spec{Intra: "naimi", Inter: "naimi"})
	defer cleanup()
	defer func() {
		if recover() == nil {
			t.Error("Unlock without Lock did not panic")
		}
	}()
	hs.Get(1).Unlock()
}

func TestHandlesGetUnknownPanics(t *testing.T) {
	net := New(Options{})
	defer net.Close()
	hs := NewHandles(net)
	defer func() {
		if recover() == nil {
			t.Error("Get on unknown id did not panic")
		}
	}()
	hs.Get(99)
}

func TestBindWithoutCallbacksPanics(t *testing.T) {
	net := New(Options{})
	defer net.Close()
	hs := NewHandles(net)
	defer func() {
		if recover() == nil {
			t.Error("Bind of unknown app did not panic")
		}
	}()
	hs.Bind([]core.App{{ID: 7}})
}

func TestCloseIsIdempotent(t *testing.T) {
	net := New(Options{})
	net.RegisterAt(0, 0, handlerFunc(func(mutex.ID, mutex.Message) {}))
	net.Close()
	net.Close()
}

type handlerFunc func(from mutex.ID, m mutex.Message)

func (f handlerFunc) Deliver(from mutex.ID, m mutex.Message) { f(from, m) }

type testMsg struct{ seq int }

func (testMsg) Kind() string { return "test" }
func (testMsg) Size() int    { return 8 }

func TestPerLinkFIFO(t *testing.T) {
	net := New(Options{Latency: func(a, b int) time.Duration { return 200 * time.Microsecond }})
	defer net.Close()
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	const k = 100
	net.RegisterAt(0, 0, handlerFunc(func(mutex.ID, mutex.Message) {}))
	net.RegisterAt(1, 0, handlerFunc(func(from mutex.ID, m mutex.Message) {
		mu.Lock()
		got = append(got, m.(testMsg).seq)
		if len(got) == k {
			close(done)
		}
		mu.Unlock()
	}))
	ep := net.Endpoint(0)
	for i := 0; i < k; i++ {
		ep.Send(1, testMsg{seq: i})
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("messages not delivered")
	}
	for i, s := range got {
		if s != i {
			t.Fatalf("link reordered: position %d has seq %d", i, s)
		}
	}
}

func TestLocalRunsOnSerialContext(t *testing.T) {
	net := New(Options{})
	defer net.Close()
	var order []string
	var mu sync.Mutex
	done := make(chan struct{})
	net.RegisterAt(0, 0, handlerFunc(func(mutex.ID, mutex.Message) {}))
	net.RegisterAt(1, 0, handlerFunc(func(from mutex.ID, m mutex.Message) {
		ep := net.Endpoint(1)
		ep.Local(func() {
			mu.Lock()
			order = append(order, "local")
			mu.Unlock()
			close(done)
		})
		mu.Lock()
		order = append(order, "handler")
		mu.Unlock()
	}))
	net.Endpoint(0).Send(1, testMsg{})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("local never ran")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "handler" || order[1] != "local" {
		t.Fatalf("order = %v", order)
	}
}

func TestRegisterPanics(t *testing.T) {
	net := New(Options{})
	defer net.Close()
	net.RegisterAt(0, 0, handlerFunc(func(mutex.ID, mutex.Message) {}))
	for name, f := range map[string]func(){
		"duplicate": func() { net.RegisterAt(0, 0, handlerFunc(func(mutex.ID, mutex.Message) {})) },
		"nil":       func() { net.RegisterAt(1, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s register did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestLatencyScale checks Scale divides the modeled delay.
func TestLatencyScale(t *testing.T) {
	net := New(Options{
		Latency: func(a, b int) time.Duration { return 100 * time.Millisecond },
		Scale:   100,
	})
	defer net.Close()
	got := make(chan time.Time, 1)
	net.RegisterAt(0, 0, handlerFunc(func(mutex.ID, mutex.Message) {}))
	net.RegisterAt(1, 0, handlerFunc(func(mutex.ID, mutex.Message) { got <- time.Now() }))
	start := time.Now()
	net.Endpoint(0).Send(1, testMsg{})
	select {
	case at := <-got:
		if d := at.Sub(start); d > 50*time.Millisecond {
			t.Fatalf("scaled delivery took %v, want ~1ms", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
}
