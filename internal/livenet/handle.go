package livenet

import (
	"context"
	"fmt"
	"sync"

	"gridmutex/internal/core"
	"gridmutex/internal/mutex"
)

// Handle is a blocking mutual-exclusion facade over one application
// process's algorithm instance: Lock blocks until the critical section is
// granted, Unlock releases it. A Handle is safe for concurrent use; lock
// attempts serialize.
type Handle struct {
	id       mutex.ID
	post     func(func())
	inst     mutex.Instance
	acquired chan struct{}
	owner    chan struct{} // capacity-1 semaphore over the Lock..Unlock span
}

func newHandle(id mutex.ID) *Handle {
	return &Handle{
		id:       id,
		acquired: make(chan struct{}, 1),
		owner:    make(chan struct{}, 1),
	}
}

// ID returns the process this handle controls.
func (h *Handle) ID() mutex.ID { return h.id }

// callbacks are the instance callbacks the handle needs.
func (h *Handle) callbacks() mutex.Callbacks {
	return mutex.Callbacks{OnAcquire: func() {
		select {
		case h.acquired <- struct{}{}:
		default:
			panic(fmt.Sprintf("livenet: unexpected second acquire for %d", h.id))
		}
	}}
}

func (h *Handle) bind(inst mutex.Instance, post func(func())) {
	h.inst = inst
	h.post = post
}

// Lock acquires the distributed critical section, blocking until it is
// granted or ctx is cancelled. On cancellation Lock returns ctx.Err() and
// the eventual grant is released automatically in the background, so the
// protocol stays consistent.
func (h *Handle) Lock(ctx context.Context) error {
	if h.inst == nil {
		panic("livenet: handle not bound to a deployment")
	}
	select {
	case h.owner <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	h.post(func() { h.inst.Request() })
	select {
	case <-h.acquired:
		return nil
	case <-ctx.Done():
		// The request cannot be retracted; release the section as
		// soon as it is granted.
		go func() {
			<-h.acquired
			h.post(func() { h.inst.Release() })
			<-h.owner
		}()
		return ctx.Err()
	}
}

// Unlock releases the critical section acquired by a successful Lock. The
// Release is posted to the process mailbox before ownership is handed
// back, so a concurrent Lock's Request is always queued behind it.
func (h *Handle) Unlock() {
	select {
	case h.owner <- struct{}{}:
		<-h.owner
		panic("livenet: Unlock without a held Lock")
	default:
	}
	h.post(func() { h.inst.Release() })
	<-h.owner
}

// Handles owns the blocking facades of a deployment's application
// processes. Create it before building the deployment, pass Callbacks to
// the builder, then Bind the built apps:
//
//	hs := livenet.NewHandles(net)
//	d, err := core.BuildComposed(net, grid, spec, hs.Callbacks)
//	hs.Bind(d.Apps)
//	hs.Get(appID).Lock(ctx)
type Handles struct {
	net Poster
	mu  sync.Mutex
	m   map[mutex.ID]*Handle
}

// Poster schedules a closure on a process's serial context; both the
// in-process Network and the UDPNetwork implement it.
type Poster interface {
	Post(id mutex.ID, f func())
}

// NewHandles creates an empty handle set over the network.
func NewHandles(net Poster) *Handles {
	return &Handles{net: net, m: make(map[mutex.ID]*Handle)}
}

// Callbacks is the core.CallbackFunc to pass to a deployment builder.
func (hs *Handles) Callbacks(id mutex.ID) mutex.Callbacks {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	h, ok := hs.m[id]
	if !ok {
		h = newHandle(id)
		hs.m[id] = h
	}
	return h.callbacks()
}

// Bind attaches built application instances to their handles.
func (hs *Handles) Bind(apps []core.App) {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	for _, a := range apps {
		h, ok := hs.m[a.ID]
		if !ok {
			// The instance was built without this handle's OnAcquire
			// callback, so Lock could never return. Fail loudly.
			panic(fmt.Sprintf("livenet: app %d built without Handles.Callbacks — pass it to the deployment builder", a.ID))
		}
		id := a.ID
		h.bind(a.Instance, func(f func()) { hs.net.Post(id, f) })
	}
}

// Get returns the handle for an application process.
func (hs *Handles) Get(id mutex.ID) *Handle {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	h, ok := hs.m[id]
	if !ok {
		panic(fmt.Sprintf("livenet: no handle for process %d", id))
	}
	return h
}
