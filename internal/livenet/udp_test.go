package livenet

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridmutex/internal/algorithms"
	"gridmutex/internal/algorithms/ring"
	"gridmutex/internal/core"
	"gridmutex/internal/mutex"
	"gridmutex/internal/topology"
)

// udpHandles assembles a composed deployment over loopback UDP.
func udpHandles(t *testing.T, grid *topology.Grid, spec core.Spec) (*UDPNetwork, *Handles) {
	t.Helper()
	net := NewUDP("", 0)
	hs := NewHandles(net)
	d, err := core.BuildComposed(net, grid, spec, hs.Callbacks)
	if err != nil {
		net.Close()
		t.Fatal(err)
	}
	hs.Bind(d.Apps)
	return net, hs
}

func TestUDPMutualExclusion(t *testing.T) {
	grid := topology.Uniform(2, 3, 0, 0)
	net, hs := udpHandles(t, grid, core.Spec{Intra: "naimi", Inter: "suzuki"})
	testUDPMutex(t, net, hs)
}

// TestUDPPermissionBasedComposition runs the permission-based algorithms
// over real sockets, exercising their wire encodings end to end.
func TestUDPPermissionBasedComposition(t *testing.T) {
	grid := topology.Uniform(2, 3, 0, 0)
	net, hs := udpHandles(t, grid, core.Spec{Intra: "lamport", Inter: "ricart-agrawala"})
	testUDPMutex(t, net, hs)
}

func testUDPMutex(t *testing.T, net *UDPNetwork, hs *Handles) {
	defer net.Close()

	var counter, inCS int
	var wg sync.WaitGroup
	for _, id := range []mutex.ID{1, 2, 4, 5} {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := hs.Get(id)
			for i := 0; i < 10; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				if err := h.Lock(ctx); err != nil {
					cancel()
					t.Errorf("process %d: %v", id, err)
					return
				}
				cancel()
				if inCS != 0 {
					t.Errorf("overlapping critical sections")
				}
				inCS++
				counter++
				inCS--
				h.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 40 {
		t.Fatalf("counter = %d, want 40", counter)
	}
}

func TestUDPAddrAndRemote(t *testing.T) {
	net := NewUDP("", 0)
	defer net.Close()
	net.RegisterAt(0, 0, handlerFunc(func(mutex.ID, mutex.Message) {}))
	addr := net.Addr(0)
	if addr == nil || addr.Port == 0 {
		t.Fatalf("Addr(0) = %v", addr)
	}
	if net.Addr(42) != nil {
		t.Fatal("unknown process has an address")
	}
	net.SetRemote(42, addr)
	if net.Addr(42) == nil {
		t.Fatal("SetRemote did not record the address")
	}
}

func TestUDPFixedPortScheme(t *testing.T) {
	const base = 39200
	net := NewUDP("", base)
	defer net.Close()
	net.RegisterAt(3, 0, handlerFunc(func(mutex.ID, mutex.Message) {}))
	if got := net.Addr(3).Port; got != base+3 {
		t.Fatalf("port = %d, want %d", got, base+3)
	}
}

func TestUDPCorruptFrameIgnored(t *testing.T) {
	net := NewUDP("", 0)
	defer net.Close()
	delivered := make(chan mutex.Message, 1)
	net.RegisterAt(0, 0, handlerFunc(func(mutex.ID, mutex.Message) {}))
	net.RegisterAt(1, 0, handlerFunc(func(from mutex.ID, m mutex.Message) { delivered <- m }))
	// Send garbage straight at the socket.
	p := net.procs[0]
	if _, err := p.conn.WriteToUDP([]byte{0, 0, 0, 0, 0xFF, 0xFF}, net.Addr(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.conn.WriteToUDP([]byte{1}, net.Addr(1)); err != nil { // runt
		t.Fatal(err)
	}
	// A valid message afterwards must still arrive.
	net.Endpoint(0).Send(1, ring.Token{})
	select {
	case m := <-delivered:
		if m.Kind() != "martin.token" {
			t.Fatalf("delivered %s", m.Kind())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("valid message lost after garbage")
	}
}

func TestUDPCloseIdempotent(t *testing.T) {
	net := NewUDP("", 0)
	net.RegisterAt(0, 0, handlerFunc(func(mutex.ID, mutex.Message) {}))
	net.Close()
	net.Close()
}

func TestUDPSendToUnknownPanics(t *testing.T) {
	net := NewUDP("", 0)
	defer net.Close()
	net.RegisterAt(0, 0, handlerFunc(func(mutex.ID, mutex.Message) {}))
	defer func() {
		if recover() == nil {
			t.Error("send to unknown did not panic")
		}
	}()
	net.Endpoint(0).Send(9, ring.Token{})
}

// TestSplitUDPDeployment runs one composed deployment across two separate
// UDPNetwork instances — the same wiring two OS processes would use, with
// addresses exchanged via SetRemote — and verifies the distributed lock
// works across the boundary.
func TestSplitUDPDeployment(t *testing.T) {
	netA := NewUDP("", 0) // hosts cluster 0: coordinator 0, apps 1, 2
	netB := NewUDP("", 0) // hosts cluster 1: coordinator 3, apps 4, 5
	defer netA.Close()
	defer netB.Close()

	homes := map[mutex.ID]*UDPNetwork{
		0: netA, 1: netA, 2: netA,
		3: netB, 4: netB, 5: netB,
	}
	clusterA := []mutex.ID{0, 1, 2}
	clusterB := []mutex.ID{3, 4, 5}
	coords := []mutex.ID{0, 3}

	// Register one dispatcher per process on its home network.
	procs := make(map[mutex.ID]*core.Process)
	for id, home := range homes {
		p := core.NewProcess(id, home.Endpoint(id))
		procs[id] = p
		home.RegisterAt(id, int(id), p)
	}
	// Exchange addresses, exactly as two OS processes would at startup.
	for id, home := range homes {
		for _, other := range homes {
			if other != home {
				other.SetRemote(id, home.Addr(id))
			}
		}
	}

	// Wire the composition by hand (the builders assume one fabric).
	intraF, err := algorithms.Factory("naimi")
	if err != nil {
		t.Fatal(err)
	}
	handles := make(map[mutex.ID]*Handle)
	buildCluster := func(members []mutex.ID, coord *core.Coordinator) mutex.Instance {
		var coordIntra mutex.Instance
		for _, id := range members {
			var cbs mutex.Callbacks
			if id == coord.ID() {
				cbs = coord.IntraCallbacks()
			} else {
				h := newHandle(id)
				handles[id] = h
				cbs = h.callbacks()
			}
			inst, err := intraF(mutex.Config{
				Self: id, Members: members, Holder: coord.ID(),
				Env: procs[id].Env(0), Callbacks: cbs,
			})
			if err != nil {
				t.Fatal(err)
			}
			procs[id].Attach(0, inst)
			if id == coord.ID() {
				coordIntra = inst
			} else {
				id := id
				handles[id].bind(inst, func(f func()) { homes[id].Post(id, f) })
			}
		}
		return coordIntra
	}
	coordA, coordB := core.NewCoordinator(0), core.NewCoordinator(3)
	intraA := buildCluster(clusterA, coordA)
	intraB := buildCluster(clusterB, coordB)
	var inters []mutex.Instance
	for i, c := range []*core.Coordinator{coordA, coordB} {
		inst, err := intraF(mutex.Config{
			Self: coords[i], Members: coords, Holder: coords[0],
			Env: procs[coords[i]].Env(1), Callbacks: c.InterCallbacks(),
		})
		if err != nil {
			t.Fatal(err)
		}
		procs[coords[i]].Attach(1, inst)
		inters = append(inters, inst)
	}
	// Boot on the coordinators' serial contexts, as the builders do.
	netA.Post(0, func() { coordA.Start(intraA, inters[0]) })
	netB.Post(3, func() { coordB.Start(intraB, inters[1]) })

	// Drive the lock from both sides of the split. Unlike the
	// single-network tests, no Go-level happens-before edge crosses the
	// socket boundary, so the checks use atomics: the CAS detects any
	// mutual exclusion overlap without itself providing the exclusion.
	var counter, inCS atomic.Int64
	var wg sync.WaitGroup
	for _, id := range []mutex.ID{1, 2, 4, 5} {
		h := handles[id]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				if err := h.Lock(ctx); err != nil {
					cancel()
					t.Error(err)
					return
				}
				cancel()
				if !inCS.CompareAndSwap(0, 1) {
					t.Error("mutual exclusion violated across the split")
				}
				counter.Add(1)
				inCS.Store(0)
				h.Unlock()
			}
		}()
	}
	wg.Wait()
	if got := counter.Load(); got != 32 {
		t.Fatalf("counter = %d, want 32", got)
	}
}
