package wire

import (
	"reflect"
	"testing"
	"testing/quick"

	"gridmutex/internal/adaptive"
	"gridmutex/internal/algorithms/central"
	"gridmutex/internal/algorithms/lamport"
	"gridmutex/internal/algorithms/naimitrehel"
	"gridmutex/internal/algorithms/raymond"
	"gridmutex/internal/algorithms/ricartagrawala"
	"gridmutex/internal/algorithms/ring"
	"gridmutex/internal/algorithms/suzukikasami"
	"gridmutex/internal/core"
	"gridmutex/internal/mutex"
)

// roundTrip encodes and fully decodes a message.
func roundTrip(t *testing.T, m mutex.Message) mutex.Message {
	t.Helper()
	b, err := Encode(nil, m)
	if err != nil {
		t.Fatalf("encode %T: %v", m, err)
	}
	got, err := DecodeFull(b)
	if err != nil {
		t.Fatalf("decode %T: %v", m, err)
	}
	return got
}

func TestRoundTripAllTypes(t *testing.T) {
	at := adaptive.Attempt{Proposer: 3, Seq: 42}
	msgs := []mutex.Message{
		naimitrehel.Request{Origin: 17},
		naimitrehel.Token{},
		ring.Request{},
		ring.Token{},
		suzukikasami.Request{Seq: 999},
		suzukikasami.Token{LN: []int64{1, -2, 3}, Q: []mutex.ID{4, 5}},
		suzukikasami.Token{LN: []int64{}, Q: nil},
		raymond.Request{},
		raymond.Privilege{},
		central.Request{},
		central.Grant{},
		central.ReleaseMsg{},
		central.Nudge{},
		core.Envelope{Level: 2, Inner: naimitrehel.Request{Origin: 9}},
		adaptive.Prepare{Attempt: at, Alg: "martin"},
		adaptive.Vote{Attempt: at, Ok: true},
		adaptive.Vote{Attempt: at, Ok: false},
		adaptive.Commit{Attempt: at, Gen: 7, Alg: "suzuki"},
		adaptive.Abort{Attempt: at},
		adaptive.Inner{Gen: 3, M: ring.Token{}},
		ricartagrawala.Request{Clock: 12},
		ricartagrawala.Reply{},
		lamport.Request{Clock: 3},
		lamport.Reply{Clock: 4},
		lamport.Release{Clock: 5},
		// Nested: an envelope around an adaptive inner around a token.
		core.Envelope{Level: 1, Inner: adaptive.Inner{Gen: 1, M: suzukikasami.Token{LN: []int64{5}}}},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		want := m
		// Decoder normalizes empty slices to their canonical form.
		if tok, ok := want.(suzukikasami.Token); ok && len(tok.LN) == 0 {
			want = suzukikasami.Token{LN: []int64{}, Q: nil}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip of %T: got %#v, want %#v", m, got, want)
		}
	}
}

func TestEncodeUnknownType(t *testing.T) {
	if _, err := Encode(nil, bogus{}); err == nil {
		t.Fatal("unknown type encoded")
	}
	// Inside an envelope too.
	if _, err := Encode(nil, core.Envelope{Inner: bogus{}}); err == nil {
		t.Fatal("unknown nested type encoded")
	}
}

type bogus struct{}

func (bogus) Kind() string { return "bogus" }
func (bogus) Size() int    { return 0 }

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":                  {},
		"unknown tag":            {0xFF},
		"truncated naimi origin": {1, 0, 0},
		"truncated suzuki seq":   {5, 1},
		"truncated suzuki token": {6, 0, 0, 0, 2, 0},
		"truncated envelope":     {13},
		"truncated vote":         {15, 0, 0, 0, 1},
		"truncated name":         {14, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 5, 'a'},
	}
	for name, b := range cases {
		if _, _, err := Decode(b); err == nil {
			t.Errorf("%s: decoded successfully", name)
		}
	}
}

func TestDecodeFullRejectsTrailing(t *testing.T) {
	b, err := Encode(nil, ring.Token{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFull(append(b, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestOversizeNameRejected(t *testing.T) {
	long := make([]byte, MaxNameLen+1)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := Encode(nil, adaptive.Prepare{Alg: string(long)}); err == nil {
		t.Fatal("oversize name encoded")
	}
}

func TestCorruptLengthRejected(t *testing.T) {
	// A suzuki token claiming 2^30 LN entries.
	b := []byte{6, 0x40, 0, 0, 0}
	if _, _, err := Decode(b); err == nil {
		t.Fatal("absurd length accepted")
	}
}

// Property: every generated Suzuki token survives the round trip.
func TestPropertySuzukiTokenRoundTrip(t *testing.T) {
	f := func(ln []int64, q []int32) bool {
		tok := suzukikasami.Token{LN: append([]int64{}, ln...)}
		for _, v := range q {
			tok.Q = append(tok.Q, mutex.ID(v))
		}
		b, err := Encode(nil, tok)
		if err != nil {
			return false
		}
		got, err := DecodeFull(b)
		if err != nil {
			return false
		}
		gt := got.(suzukikasami.Token)
		if len(gt.LN) != len(tok.LN) || len(gt.Q) != len(tok.Q) {
			return false
		}
		for i := range tok.LN {
			if gt.LN[i] != tok.LN[i] {
				return false
			}
		}
		for i := range tok.Q {
			if gt.Q[i] != tok.Q[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: random byte strings never panic the decoder.
func TestPropertyDecoderTotality(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("decoder panicked on %x: %v", b, r)
			}
		}()
		m, n, err := Decode(b)
		if err == nil && (m == nil || n <= 0 || n > len(b)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: envelopes of random levels and simple inner messages round
// trip.
func TestPropertyEnvelopeRoundTrip(t *testing.T) {
	f := func(level uint8, origin int32, seq int64) bool {
		var inner mutex.Message
		switch seq % 3 {
		case 0:
			inner = naimitrehel.Request{Origin: mutex.ID(origin)}
		case 1:
			inner = suzukikasami.Request{Seq: seq}
		default:
			inner = central.Grant{}
		}
		env := core.Envelope{Level: core.Level(level), Inner: inner}
		b, err := Encode(nil, env)
		if err != nil {
			return false
		}
		got, err := DecodeFull(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, env)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
