package wire

import (
	"testing"

	"gridmutex/internal/adaptive"
	"gridmutex/internal/algorithms/naimitrehel"
	"gridmutex/internal/algorithms/suzukikasami"
	"gridmutex/internal/core"
	"gridmutex/internal/mutex"
)

// FuzzDecode feeds arbitrary bytes to the decoder: it must never panic,
// and anything it accepts must re-encode to bytes that decode to the same
// value (a decode/encode/decode fixed point). `go test` runs the seed
// corpus; `go test -fuzz=FuzzDecode ./internal/livenet/wire` explores.
func FuzzDecode(f *testing.F) {
	seed := []mutex.Message{
		naimitrehel.Request{Origin: 5},
		suzukikasami.Token{LN: []int64{1, 2, 3}, Q: []mutex.ID{7}},
		core.Envelope{Level: 1, Inner: adaptive.Inner{Gen: 2, M: naimitrehel.Token{}}},
		adaptive.Commit{Attempt: adaptive.Attempt{Proposer: 1, Seq: 9}, Gen: 4, Alg: "martin"},
	}
	for _, m := range seed {
		b, err := Encode(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Add([]byte{6, 0x7F, 0xFF, 0xFF, 0xFF}) // absurd suzuki LN length

	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Decode(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if m == nil || n <= 0 || n > len(data) {
			t.Fatalf("accepted but inconsistent: m=%v n=%d len=%d", m, n, len(data))
		}
		re, err := Encode(nil, m)
		if err != nil {
			t.Fatalf("decoded message %T does not re-encode: %v", m, err)
		}
		m2, err := DecodeFull(re)
		if err != nil {
			t.Fatalf("re-encoded bytes do not decode: %v", err)
		}
		if m.Kind() != m2.Kind() || m.Size() != m2.Size() {
			t.Fatalf("fixed point broken: %s/%d vs %s/%d", m.Kind(), m.Size(), m2.Kind(), m2.Size())
		}
	})
}

func BenchmarkEncodeSuzukiToken(b *testing.B) {
	tok := suzukikasami.Token{LN: make([]int64, 180), Q: make([]mutex.ID, 20)}
	env := core.Envelope{Level: 1, Inner: tok}
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = Encode(buf[:0], env)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSuzukiToken(b *testing.B) {
	tok := suzukikasami.Token{LN: make([]int64, 180), Q: make([]mutex.ID, 20)}
	buf, err := Encode(nil, core.Envelope{Level: 1, Inner: tok})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFull(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundTripSmall(b *testing.B) {
	m := core.Envelope{Level: 0, Inner: naimitrehel.Request{Origin: 3}}
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = Encode(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeFull(buf); err != nil {
			b.Fatal(err)
		}
	}
}
