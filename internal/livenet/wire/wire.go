// Package wire implements the binary encoding of every message type in the
// repository, used by the UDP transport (the paper's implementation is C
// over UDP sockets). The format is a one-byte type tag followed by
// fixed-width big-endian fields; variable-length payloads (Suzuki-Kasami's
// LN array and queue, algorithm names, nested messages) carry explicit
// length prefixes.
package wire

import (
	"encoding/binary"
	"fmt"

	"gridmutex/internal/adaptive"
	"gridmutex/internal/algorithms/central"
	"gridmutex/internal/algorithms/lamport"
	"gridmutex/internal/algorithms/naimitrehel"
	"gridmutex/internal/algorithms/raymond"
	"gridmutex/internal/algorithms/ricartagrawala"
	"gridmutex/internal/algorithms/ring"
	"gridmutex/internal/algorithms/suzukikasami"
	"gridmutex/internal/core"
	"gridmutex/internal/mutex"
)

// Type tags. Stable on the wire: never renumber, only append.
const (
	tagNaimiRequest byte = iota + 1
	tagNaimiToken
	tagRingRequest
	tagRingToken
	tagSuzukiRequest
	tagSuzukiToken
	tagRaymondRequest
	tagRaymondPrivilege
	tagCentralRequest
	tagCentralGrant
	tagCentralRelease
	tagCentralNudge
	tagEnvelope
	tagAdaptivePrepare
	tagAdaptiveVote
	tagAdaptiveCommit
	tagAdaptiveAbort
	tagAdaptiveInner
	tagRARequest
	tagRAReply
	tagLamportRequest
	tagLamportReply
	tagLamportRelease
)

// MaxNameLen bounds algorithm-name strings on the wire.
const MaxNameLen = 255

// MaxSliceLen bounds array payloads (a Suzuki token for 100k members is
// far beyond anything this repository deploys; the bound exists to fail
// fast on corrupt input).
const MaxSliceLen = 1 << 20

// Encode serializes m, appending to dst, and returns the extended slice.
func Encode(dst []byte, m mutex.Message) ([]byte, error) {
	switch v := m.(type) {
	case naimitrehel.Request:
		dst = append(dst, tagNaimiRequest)
		return appendID(dst, v.Origin), nil
	case naimitrehel.Token:
		return append(dst, tagNaimiToken), nil
	case ring.Request:
		return append(dst, tagRingRequest), nil
	case ring.Token:
		return append(dst, tagRingToken), nil
	case suzukikasami.Request:
		dst = append(dst, tagSuzukiRequest)
		return appendI64(dst, v.Seq), nil
	case suzukikasami.Token:
		dst = append(dst, tagSuzukiToken)
		dst = appendU32(dst, uint32(len(v.LN)))
		for _, ln := range v.LN {
			dst = appendI64(dst, ln)
		}
		dst = appendU32(dst, uint32(len(v.Q)))
		for _, q := range v.Q {
			dst = appendID(dst, q)
		}
		return dst, nil
	case raymond.Request:
		return append(dst, tagRaymondRequest), nil
	case raymond.Privilege:
		return append(dst, tagRaymondPrivilege), nil
	case central.Request:
		return append(dst, tagCentralRequest), nil
	case central.Grant:
		return append(dst, tagCentralGrant), nil
	case central.ReleaseMsg:
		return append(dst, tagCentralRelease), nil
	case central.Nudge:
		return append(dst, tagCentralNudge), nil
	case core.Envelope:
		dst = append(dst, tagEnvelope, byte(v.Level))
		return Encode(dst, v.Inner)
	case adaptive.Prepare:
		dst = append(dst, tagAdaptivePrepare)
		dst = appendAttempt(dst, v.Attempt)
		return appendName(dst, v.Alg)
	case adaptive.Vote:
		dst = append(dst, tagAdaptiveVote)
		dst = appendAttempt(dst, v.Attempt)
		if v.Ok {
			return append(dst, 1), nil
		}
		return append(dst, 0), nil
	case adaptive.Commit:
		dst = append(dst, tagAdaptiveCommit)
		dst = appendAttempt(dst, v.Attempt)
		dst = appendI64(dst, v.Gen)
		return appendName(dst, v.Alg)
	case adaptive.Abort:
		dst = append(dst, tagAdaptiveAbort)
		return appendAttempt(dst, v.Attempt), nil
	case adaptive.Inner:
		dst = append(dst, tagAdaptiveInner)
		dst = appendI64(dst, v.Gen)
		return Encode(dst, v.M)
	case ricartagrawala.Request:
		dst = append(dst, tagRARequest)
		return appendI64(dst, v.Clock), nil
	case ricartagrawala.Reply:
		return append(dst, tagRAReply), nil
	case lamport.Request:
		dst = append(dst, tagLamportRequest)
		return appendI64(dst, v.Clock), nil
	case lamport.Reply:
		dst = append(dst, tagLamportReply)
		return appendI64(dst, v.Clock), nil
	case lamport.Release:
		dst = append(dst, tagLamportRelease)
		return appendI64(dst, v.Clock), nil
	default:
		return nil, fmt.Errorf("wire: unencodable message type %T", m)
	}
}

// Decode parses one message from b, returning it and the number of bytes
// consumed.
func Decode(b []byte) (mutex.Message, int, error) {
	if len(b) == 0 {
		return nil, 0, fmt.Errorf("wire: empty buffer")
	}
	tag, rest := b[0], b[1:]
	n := 1
	switch tag {
	case tagNaimiRequest:
		id, k, err := readID(rest)
		if err != nil {
			return nil, 0, err
		}
		return naimitrehel.Request{Origin: id}, n + k, nil
	case tagNaimiToken:
		return naimitrehel.Token{}, n, nil
	case tagRingRequest:
		return ring.Request{}, n, nil
	case tagRingToken:
		return ring.Token{}, n, nil
	case tagSuzukiRequest:
		seq, k, err := readI64(rest)
		if err != nil {
			return nil, 0, err
		}
		return suzukikasami.Request{Seq: seq}, n + k, nil
	case tagSuzukiToken:
		lnLen, k, err := readU32(rest)
		if err != nil {
			return nil, 0, err
		}
		rest, n = rest[k:], n+k
		if lnLen > MaxSliceLen {
			return nil, 0, fmt.Errorf("wire: LN length %d exceeds bound", lnLen)
		}
		ln := make([]int64, lnLen)
		for i := range ln {
			v, k, err := readI64(rest)
			if err != nil {
				return nil, 0, err
			}
			ln[i], rest, n = v, rest[k:], n+k
		}
		qLen, k, err := readU32(rest)
		if err != nil {
			return nil, 0, err
		}
		rest, n = rest[k:], n+k
		if qLen > MaxSliceLen {
			return nil, 0, fmt.Errorf("wire: queue length %d exceeds bound", qLen)
		}
		q := make([]mutex.ID, qLen)
		for i := range q {
			v, k, err := readID(rest)
			if err != nil {
				return nil, 0, err
			}
			q[i], rest, n = v, rest[k:], n+k
		}
		if qLen == 0 {
			q = nil
		}
		return suzukikasami.Token{LN: ln, Q: q}, n, nil
	case tagRaymondRequest:
		return raymond.Request{}, n, nil
	case tagRaymondPrivilege:
		return raymond.Privilege{}, n, nil
	case tagCentralRequest:
		return central.Request{}, n, nil
	case tagCentralGrant:
		return central.Grant{}, n, nil
	case tagCentralRelease:
		return central.ReleaseMsg{}, n, nil
	case tagCentralNudge:
		return central.Nudge{}, n, nil
	case tagEnvelope:
		if len(rest) < 1 {
			return nil, 0, fmt.Errorf("wire: truncated envelope")
		}
		level := core.Level(rest[0])
		inner, k, err := Decode(rest[1:])
		if err != nil {
			return nil, 0, err
		}
		return core.Envelope{Level: level, Inner: inner}, n + 1 + k, nil
	case tagAdaptivePrepare:
		at, k, err := readAttempt(rest)
		if err != nil {
			return nil, 0, err
		}
		rest, n = rest[k:], n+k
		name, k, err := readName(rest)
		if err != nil {
			return nil, 0, err
		}
		return adaptive.Prepare{Attempt: at, Alg: name}, n + k, nil
	case tagAdaptiveVote:
		at, k, err := readAttempt(rest)
		if err != nil {
			return nil, 0, err
		}
		rest, n = rest[k:], n+k
		if len(rest) < 1 {
			return nil, 0, fmt.Errorf("wire: truncated vote")
		}
		return adaptive.Vote{Attempt: at, Ok: rest[0] == 1}, n + 1, nil
	case tagAdaptiveCommit:
		at, k, err := readAttempt(rest)
		if err != nil {
			return nil, 0, err
		}
		rest, n = rest[k:], n+k
		gen, k, err := readI64(rest)
		if err != nil {
			return nil, 0, err
		}
		rest, n = rest[k:], n+k
		name, k, err := readName(rest)
		if err != nil {
			return nil, 0, err
		}
		return adaptive.Commit{Attempt: at, Gen: gen, Alg: name}, n + k, nil
	case tagAdaptiveAbort:
		at, k, err := readAttempt(rest)
		if err != nil {
			return nil, 0, err
		}
		return adaptive.Abort{Attempt: at}, n + k, nil
	case tagAdaptiveInner:
		gen, k, err := readI64(rest)
		if err != nil {
			return nil, 0, err
		}
		rest, n = rest[k:], n+k
		inner, k, err := Decode(rest)
		if err != nil {
			return nil, 0, err
		}
		return adaptive.Inner{Gen: gen, M: inner}, n + k, nil
	case tagRARequest:
		c, k, err := readI64(rest)
		if err != nil {
			return nil, 0, err
		}
		return ricartagrawala.Request{Clock: c}, n + k, nil
	case tagRAReply:
		return ricartagrawala.Reply{}, n, nil
	case tagLamportRequest:
		c, k, err := readI64(rest)
		if err != nil {
			return nil, 0, err
		}
		return lamport.Request{Clock: c}, n + k, nil
	case tagLamportReply:
		c, k, err := readI64(rest)
		if err != nil {
			return nil, 0, err
		}
		return lamport.Reply{Clock: c}, n + k, nil
	case tagLamportRelease:
		c, k, err := readI64(rest)
		if err != nil {
			return nil, 0, err
		}
		return lamport.Release{Clock: c}, n + k, nil
	default:
		return nil, 0, fmt.Errorf("wire: unknown message tag %d", tag)
	}
}

// DecodeFull parses one message and requires the buffer to be fully
// consumed — the datagram contract.
func DecodeFull(b []byte) (mutex.Message, error) {
	m, n, err := Decode(b)
	if err != nil {
		return nil, err
	}
	if n != len(b) {
		return nil, fmt.Errorf("wire: %d trailing bytes after %s", len(b)-n, m.Kind())
	}
	return m, nil
}

func appendID(dst []byte, id mutex.ID) []byte { return appendU32(dst, uint32(int32(id))) }

func appendU32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }

func appendI64(dst []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(v))
}

func appendAttempt(dst []byte, a adaptive.Attempt) []byte {
	dst = appendID(dst, a.Proposer)
	return appendI64(dst, a.Seq)
}

func appendName(dst []byte, s string) ([]byte, error) {
	if len(s) > MaxNameLen {
		return nil, fmt.Errorf("wire: name %q too long", s)
	}
	dst = append(dst, byte(len(s)))
	return append(dst, s...), nil
}

func readID(b []byte) (mutex.ID, int, error) {
	v, n, err := readU32(b)
	return mutex.ID(int32(v)), n, err
}

func readU32(b []byte) (uint32, int, error) {
	if len(b) < 4 {
		return 0, 0, fmt.Errorf("wire: truncated u32")
	}
	return binary.BigEndian.Uint32(b), 4, nil
}

func readI64(b []byte) (int64, int, error) {
	if len(b) < 8 {
		return 0, 0, fmt.Errorf("wire: truncated i64")
	}
	// Negative values round-trip through two's complement.
	return int64(binary.BigEndian.Uint64(b)), 8, nil
}

func readAttempt(b []byte) (adaptive.Attempt, int, error) {
	id, k1, err := readID(b)
	if err != nil {
		return adaptive.Attempt{}, 0, err
	}
	seq, k2, err := readI64(b[k1:])
	if err != nil {
		return adaptive.Attempt{}, 0, err
	}
	return adaptive.Attempt{Proposer: id, Seq: seq}, k1 + k2, nil
}

func readName(b []byte) (string, int, error) {
	if len(b) < 1 {
		return "", 0, fmt.Errorf("wire: truncated name")
	}
	l := int(b[0])
	if len(b) < 1+l {
		return "", 0, fmt.Errorf("wire: truncated name body")
	}
	return string(b[1 : 1+l]), 1 + l, nil
}
