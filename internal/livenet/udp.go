package livenet

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"gridmutex/internal/livenet/wire"
	"gridmutex/internal/mutex"
)

// UDPNetwork implements mutex.Fabric over real UDP sockets, mirroring the
// paper's C-over-UDP implementation. Each process owns one socket; frames
// are [sender id, 4 bytes big-endian][wire-encoded message].
//
// Delivery relies on the transport: on loopback (the supported deployment
// for examples and tests) datagrams are reliable and ordered in practice.
// The algorithms tolerate reordering of independent messages, but a lossy
// WAN deployment would need a retransmission layer this repository does
// not provide.
type UDPNetwork struct {
	host     string
	basePort int

	mu     sync.Mutex
	procs  map[mutex.ID]*udpProc
	addrs  map[mutex.ID]*net.UDPAddr
	closed bool
	wg     sync.WaitGroup
}

type udpProc struct {
	conn *net.UDPConn
	mbox *mailbox
}

// NewUDP creates a UDP fabric on host (empty means 127.0.0.1). With
// basePort > 0, process id binds port basePort+id — a fixed scheme other
// OS processes can predict; with basePort 0 every process binds an
// ephemeral port (single-process deployments).
func NewUDP(host string, basePort int) *UDPNetwork {
	if host == "" {
		host = "127.0.0.1"
	}
	return &UDPNetwork{
		host:     host,
		basePort: basePort,
		procs:    make(map[mutex.ID]*udpProc),
		addrs:    make(map[mutex.ID]*net.UDPAddr),
	}
}

// RegisterAt implements mutex.Fabric: it binds the process's socket and
// starts its reader and mailbox goroutines.
func (n *UDPNetwork) RegisterAt(id mutex.ID, node int, h mutex.Handler) {
	if h == nil {
		panic("livenet: nil handler")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		panic("livenet: register on closed UDP network")
	}
	if _, dup := n.procs[id]; dup {
		panic(fmt.Sprintf("livenet: process %d registered twice", id))
	}
	port := 0
	if n.basePort > 0 {
		port = n.basePort + int(id)
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(n.host), Port: port})
	if err != nil {
		panic(fmt.Sprintf("livenet: bind process %d: %v", id, err))
	}
	p := &udpProc{conn: conn, mbox: newMailbox()}
	n.procs[id] = p
	n.addrs[id] = conn.LocalAddr().(*net.UDPAddr)

	n.wg.Add(2)
	go func() {
		defer n.wg.Done()
		p.mbox.drain()
	}()
	go func() {
		defer n.wg.Done()
		n.readLoop(p, h)
	}()
}

// readLoop decodes datagrams and posts deliveries to the process mailbox.
func (n *UDPNetwork) readLoop(p *udpProc, h mutex.Handler) {
	buf := make([]byte, 64*1024)
	for {
		k, _, err := p.conn.ReadFromUDP(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		if k < 4 {
			continue // runt frame
		}
		from := mutex.ID(int32(uint32(buf[0])<<24 | uint32(buf[1])<<16 | uint32(buf[2])<<8 | uint32(buf[3])))
		m, err := wire.DecodeFull(buf[4:k])
		if err != nil {
			continue // corrupt frame: drop, like a checksum failure would
		}
		p.mbox.put(func() { h.Deliver(from, m) })
	}
}

// Endpoint implements mutex.Fabric.
func (n *UDPNetwork) Endpoint(id mutex.ID) mutex.Env {
	return &udpEndpoint{net: n, self: id}
}

// Post schedules f on the serial context of process id.
func (n *UDPNetwork) Post(id mutex.ID, f func()) {
	n.mu.Lock()
	p, ok := n.procs[id]
	n.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("livenet: post to unregistered process %d", id))
	}
	p.mbox.put(f)
}

// Addr returns the UDP address process id is bound to.
func (n *UDPNetwork) Addr(id mutex.ID) *net.UDPAddr {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.addrs[id]
}

// SetRemote records the address of a process hosted by another OS process,
// so a partial local deployment can address it.
func (n *UDPNetwork) SetRemote(id mutex.ID, addr *net.UDPAddr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addrs[id] = addr
}

// Close shuts every socket and mailbox down and waits for the goroutines.
func (n *UDPNetwork) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		n.wg.Wait()
		return
	}
	n.closed = true
	procs := make([]*udpProc, 0, len(n.procs))
	for _, p := range n.procs {
		procs = append(procs, p)
	}
	n.mu.Unlock()
	for _, p := range procs {
		p.conn.Close()
		p.mbox.close()
	}
	n.wg.Wait()
}

func (n *UDPNetwork) send(from, to mutex.ID, m mutex.Message) {
	n.mu.Lock()
	p, okFrom := n.procs[from]
	addr, okTo := n.addrs[to]
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return
	}
	if !okFrom {
		panic(fmt.Sprintf("livenet: send from unregistered process %d", from))
	}
	if !okTo {
		panic(fmt.Sprintf("livenet: message %s from %d to unknown process %d", m.Kind(), from, to))
	}
	frame := []byte{byte(uint32(from) >> 24), byte(uint32(from) >> 16), byte(uint32(from) >> 8), byte(uint32(from))}
	frame, err := wire.Encode(frame, m)
	if err != nil {
		panic(fmt.Sprintf("livenet: encode %s: %v", m.Kind(), err))
	}
	// Datagram sends on loopback only fail under resource exhaustion;
	// treat a failure like a dropped packet (the transport's contract).
	_, _ = p.conn.WriteToUDP(frame, addr)
}

type udpEndpoint struct {
	net  *UDPNetwork
	self mutex.ID
}

func (e *udpEndpoint) Send(to mutex.ID, m mutex.Message) { e.net.send(e.self, to, m) }
func (e *udpEndpoint) Local(f func())                    { e.net.Post(e.self, f) }
