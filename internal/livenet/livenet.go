// Package livenet runs the same algorithm state machines as the simulator,
// but live: every process is a goroutine draining an unbounded mailbox, and
// messages travel over per-link delivery goroutines that model the grid's
// latencies with real sleeps. It implements mutex.Fabric, so the core
// builders assemble deployments on it unchanged.
//
// livenet is the runtime behind the runnable examples and the UDP tooling;
// experiments use the deterministic simulator instead.
package livenet

import (
	"fmt"
	"sync"
	"time"

	"gridmutex/internal/mutex"
)

// Latency returns the one-way delay between two physical nodes. A nil
// Latency means instant delivery.
type Latency func(fromNode, toNode int) time.Duration

// Options configure the live network.
type Options struct {
	// Latency models the link delays; nil delivers instantly.
	Latency Latency
	// Scale divides every latency (e.g. Scale=100 turns the Grid'5000
	// milliseconds into tens of microseconds so examples finish
	// quickly). Zero or one leaves latencies untouched.
	Scale int
}

// Network is an in-process message fabric: goroutine mailboxes per
// process, one delivery goroutine per active link to preserve per-link
// FIFO under latency.
type Network struct {
	opts Options

	mu      sync.Mutex
	nodes   map[mutex.ID]*proc
	nodeOf  map[mutex.ID]int
	links   map[linkKey]chan transfer
	closed  bool
	wg      sync.WaitGroup
	senders sync.WaitGroup // in-flight send calls, drained before Close
}

type linkKey struct{ from, to mutex.ID }

type transfer struct {
	from  mutex.ID
	to    mutex.ID
	m     mutex.Message
	delay time.Duration
}

// proc is one registered process: a handler plus its serial mailbox.
type proc struct {
	h    mutex.Handler
	mbox *mailbox
}

// New creates a live network.
func New(opts Options) *Network {
	return &Network{
		opts:   opts,
		nodes:  make(map[mutex.ID]*proc),
		nodeOf: make(map[mutex.ID]int),
		links:  make(map[linkKey]chan transfer),
	}
}

// RegisterAt implements mutex.Fabric: it installs the handler and starts
// the process's mailbox goroutine.
func (n *Network) RegisterAt(id mutex.ID, node int, h mutex.Handler) {
	if h == nil {
		panic("livenet: nil handler")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		panic("livenet: register on closed network")
	}
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("livenet: process %d registered twice", id))
	}
	p := &proc{h: h, mbox: newMailbox()}
	n.nodes[id] = p
	n.nodeOf[id] = node
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		p.mbox.drain()
	}()
}

// Endpoint implements mutex.Fabric.
func (n *Network) Endpoint(id mutex.ID) mutex.Env {
	return &endpoint{net: n, self: id}
}

// Post schedules f on the serial context of process id; it is how external
// goroutines (e.g. a blocking Lock call) interact with an instance.
func (n *Network) Post(id mutex.ID, f func()) {
	n.mu.Lock()
	p, ok := n.nodes[id]
	n.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("livenet: post to unregistered process %d", id))
	}
	p.mbox.put(f)
}

// Close stops every mailbox and link after their queues drain, and waits
// for the goroutines to exit. Messages sent after Close are dropped.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		n.wg.Wait()
		return
	}
	n.closed = true
	links := make([]chan transfer, 0, len(n.links))
	for _, ch := range n.links {
		links = append(links, ch)
	}
	procs := make([]*proc, 0, len(n.nodes))
	for _, p := range n.nodes {
		procs = append(procs, p)
	}
	n.mu.Unlock()
	// Senders that passed the closed check may still be writing into
	// link channels; let them finish before closing.
	n.senders.Wait()
	for _, ch := range links {
		close(ch)
	}
	for _, p := range procs {
		p.mbox.close()
	}
	n.wg.Wait()
}

// send queues the message on the ordered link's delivery goroutine.
func (n *Network) send(from, to mutex.ID, m mutex.Message) {
	if m == nil {
		panic("livenet: nil message")
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	if _, ok := n.nodes[to]; !ok {
		n.mu.Unlock()
		panic(fmt.Sprintf("livenet: message %s from %d to unregistered process %d", m.Kind(), from, to))
	}
	var delay time.Duration
	if n.opts.Latency != nil {
		delay = n.opts.Latency(n.nodeOf[from], n.nodeOf[to])
		if n.opts.Scale > 1 {
			delay /= time.Duration(n.opts.Scale)
		}
	}
	key := linkKey{from, to}
	ch, ok := n.links[key]
	if !ok {
		ch = make(chan transfer, 256)
		n.links[key] = ch
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.runLink(ch)
		}()
	}
	n.senders.Add(1)
	n.mu.Unlock()
	defer n.senders.Done()
	ch <- transfer{from: from, to: to, m: m, delay: delay}
}

// runLink delivers one link's messages in order, sleeping each message's
// latency. Because a link is serial, sleeping preserves FIFO exactly.
func (n *Network) runLink(ch chan transfer) {
	for t := range ch {
		if t.delay > 0 {
			time.Sleep(t.delay)
		}
		n.mu.Lock()
		p, ok := n.nodes[t.to]
		closed := n.closed
		n.mu.Unlock()
		if !ok || closed {
			continue
		}
		tt := t
		p.mbox.put(func() { p.h.Deliver(tt.from, tt.m) })
	}
}

type endpoint struct {
	net  *Network
	self mutex.ID
}

func (e *endpoint) Send(to mutex.ID, m mutex.Message) { e.net.send(e.self, to, m) }
func (e *endpoint) Local(f func())                    { e.net.Post(e.self, f) }

// mailbox is an unbounded FIFO of closures drained by one goroutine.
// Unboundedness matters: a handler may post to its own mailbox, which
// would deadlock on a full bounded channel.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(f func()) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.queue = append(m.queue, f)
	m.cond.Signal()
}

func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Signal()
}

// drain runs queued closures until the mailbox is closed and empty.
func (m *mailbox) drain() {
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.queue) == 0 && m.closed {
			m.mu.Unlock()
			return
		}
		f := m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()
		f()
	}
}
