package lint

import (
	"go/ast"
	"go/types"
)

// LockDiscipline enforces the three mutex rules the live transports
// depend on:
//
//  1. A function that calls Lock (or RLock) on a sync.Mutex/RWMutex must
//     contain a matching Unlock (RUnlock) on the same receiver — the
//     cross-function handoff pattern is banned because it defeats local
//     reasoning about lock extent.
//  2. No channel send while a mutex is held: the receiver may be a
//     mailbox goroutine that needs the same mutex to drain, which is the
//     classic livenet deadlock.
//  3. Mutexes travel by pointer: a by-value sync.Mutex/RWMutex parameter
//     or result silently copies the lock state.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "require in-function Lock/Unlock pairing, forbid channel sends " +
		"under a held mutex and mutexes passed by value",
	AppliesTo: anyUnder(
		"internal/livenet",
		"internal/reliable",
		// fleet IS the goroutine pool (its one `go` statement carries a
		// reasoned //lint:allow desdeterminism), so it also gets the
		// concurrent-code discipline checks.
		"internal/fleet",
	),
	Run: runLockDiscipline,
}

func isMutexType(t types.Type) bool {
	return namedType(t, "sync", "Mutex") || namedType(t, "sync", "RWMutex")
}

var unlockOf = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

func runLockDiscipline(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkMutexParams(p, n.Type)
				if n.Body != nil {
					checkFuncBody(p, n.Body)
				}
				// Nested FuncLits are handled below; returning true
				// descends into them.
			case *ast.FuncLit:
				checkFuncBody(p, n.Body)
			}
			return true
		})
	}
}

// checkMutexParams flags by-value mutex parameters and results.
func checkMutexParams(p *Pass, ft *ast.FuncType) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if t := p.TypeOf(field.Type); t != nil {
				if _, isPtr := t.(*types.Pointer); !isPtr && isMutexType(t) {
					p.Reportf(field.Type.Pos(), "sync.%s passed by value as a %s copies the lock state; use a pointer", typeName(t), what)
				}
			}
		}
	}
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

func typeName(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// mutexCall returns (receiver expression string, method name) when call
// is a Lock/Unlock/RLock/RUnlock on a mutex-typed receiver.
func mutexCall(p *Pass, call *ast.CallExpr) (string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	t := p.TypeOf(sel.X)
	if t == nil || !isMutexType(t) {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// checkFuncBody runs the pairing and send-under-lock checks on one
// function body. Nested function literals are skipped here — the
// surrounding walk visits them as their own scope, because a closure's
// Unlock cannot discharge the enclosing function's Lock (it may run on
// another goroutine, much later, or never).
func checkFuncBody(p *Pass, body *ast.BlockStmt) {
	locks := make(map[string][]*ast.CallExpr) // receiver -> Lock/RLock calls
	unlocks := make(map[string]bool)          // receiver+method present?
	walkOwnLevel(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		recv, method, ok := mutexCall(p, call)
		if !ok {
			return
		}
		switch method {
		case "Lock", "RLock":
			locks[recv+"."+method] = append(locks[recv+"."+method], call)
		case "Unlock", "RUnlock":
			unlocks[recv+"."+method] = true
		}
	})
	for key, calls := range locks {
		recv, method := splitLockKey(key)
		want := unlockOf[method]
		if !unlocks[recv+"."+want] {
			for _, c := range calls {
				p.Reportf(c.Pos(), "%s.%s without a %s on %s in the same function; release the lock where it is taken", recv, method, want, recv)
			}
		}
	}
	var held []string
	scanHeld(p, body.List, held)
}

func splitLockKey(key string) (recv, method string) {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '.' {
			return key[:i], key[i+1:]
		}
	}
	return key, ""
}

// walkOwnLevel visits every node of the body except nested FuncLit
// bodies.
func walkOwnLevel(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// scanHeld walks a statement list in program order, tracking which mutex
// receivers are held, and reports channel sends while the held set is
// non-empty. Nested control-flow blocks are scanned with a copy of the
// held set: acquisitions and releases inside a branch are assumed not to
// outlive it, a deliberate approximation that keeps the analysis linear
// and errs toward reporting (the escape hatch covers the rare deliberate
// send-under-lock).
func scanHeld(p *Pass, stmts []ast.Stmt, held []string) {
	holds := func() bool { return len(held) > 0 }
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if recv, method, ok := mutexCall(p, call); ok {
					switch method {
					case "Lock", "RLock":
						held = append(held, recv)
					case "Unlock", "RUnlock":
						held = removeHeld(held, recv)
					}
				}
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() holds until function exit: the mutex
			// stays held for the rest of this scan.
			continue
		case *ast.SendStmt:
			if holds() {
				p.Reportf(s.Pos(), "channel send while holding mutex %s; the receiver may need the same lock to make progress", held[len(held)-1])
			}
		case *ast.BlockStmt:
			scanHeld(p, s.List, append([]string(nil), held...))
		case *ast.IfStmt:
			scanIf(p, s, held)
		case *ast.ForStmt:
			scanHeld(p, s.Body.List, append([]string(nil), held...))
		case *ast.RangeStmt:
			scanHeld(p, s.Body.List, append([]string(nil), held...))
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanHeld(p, cc.Body, append([]string(nil), held...))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanHeld(p, cc.Body, append([]string(nil), held...))
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					if snd, ok := cc.Comm.(*ast.SendStmt); ok && holds() {
						p.Reportf(snd.Pos(), "channel send while holding mutex %s; the receiver may need the same lock to make progress", held[len(held)-1])
					}
					scanHeld(p, cc.Body, append([]string(nil), held...))
				}
			}
		}
	}
}

func scanIf(p *Pass, s *ast.IfStmt, held []string) {
	scanHeld(p, s.Body.List, append([]string(nil), held...))
	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		scanHeld(p, e.List, append([]string(nil), held...))
	case *ast.IfStmt:
		scanIf(p, e, held)
	}
}

func removeHeld(held []string, recv string) []string {
	out := held[:0:len(held)]
	removed := false
	for _, h := range held {
		if !removed && h == recv {
			removed = true
			continue
		}
		out = append(out, h)
	}
	return out
}
