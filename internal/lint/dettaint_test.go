package lint_test

import (
	"testing"

	"gridmutex/internal/lint"
	"gridmutex/internal/lint/linttest"
)

func TestDetTaintCrossPackageChain(t *testing.T) {
	linttest.RunProgram(t, linttest.TestDataDir(t), lint.DetTaint,
		"dettaint/internal/harness",
		"dettaint/internal/util",
	)
}

// TestDetTaintChainRecorded pins the part the want harness cannot see:
// the diagnostic carries the entry-point chain, outermost first.
func TestDetTaintChainRecorded(t *testing.T) {
	prog := loadProgram(t, "dettaint/internal/harness", "dettaint/internal/util")
	diags := lint.RunProgramAnalyzers(prog, []*lint.ProgramAnalyzer{lint.DetTaint})
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	for _, d := range diags {
		if len(d.Chain) < 2 {
			t.Errorf("diagnostic without a cross-package chain: %s", d)
			continue
		}
		if d.Chain[0].Func != "internal/harness.Run" {
			t.Errorf("chain starts at %s, want the DES entry point internal/harness.Run", d.Chain[0].Func)
		}
	}
}

// TestDetTaintOldPassMisses proves the blind spot: the file-local
// desdeterminism pass, run exactly as the suite configures it, reports
// nothing on the helper package — the wall-clock read there is only
// caught through the cross-package chain.
func TestDetTaintOldPassMisses(t *testing.T) {
	prog := loadProgram(t, "dettaint/internal/util")
	pkg := prog.Package("dettaint/internal/util")
	if pkg == nil {
		t.Fatal("util package not loaded")
	}
	if diags := lint.RunAnalyzers(pkg, lint.All()); len(diags) != 0 {
		t.Errorf("per-package suite unexpectedly reports on the helper package:\n%s", linttest.Describe(diags))
	}
}

func loadProgram(t *testing.T, paths ...string) *lint.Program {
	t.Helper()
	root := linttest.TestDataDir(t)
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	loader.ExtraRoot = root
	prog, err := loader.LoadProgram(paths)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range prog.Packages {
		for _, e := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, e)
		}
	}
	return prog
}
