package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path the package was loaded under.
	Path string
	// Dir is the directory its sources live in.
	Dir  string
	Fset *token.FileSet
	// Files are the parsed non-test sources, in filename order.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking problems. The analyzers still
	// run on a partially checked package, but a driver should surface
	// these: a finding on broken code may be wrong.
	TypeErrors []error
}

// Loader loads and type-checks packages without the go toolchain or
// network: module-internal imports resolve against the module source
// tree, everything else against GOROOT source via go/importer.
//
// A single Loader caches type-checked packages, so loading many packages
// of one module pays the standard-library checking cost once.
type Loader struct {
	// ModuleRoot is the directory containing go.mod; ModulePath the
	// module path declared there.
	ModuleRoot string
	ModulePath string
	// ExtraRoot, when non-empty, resolves import paths that are neither
	// module-internal nor resolvable as stdlib — the corpus layout of
	// linttest (testdata/src/<path>).
	ExtraRoot string

	fset  *token.FileSet
	std   types.Importer
	cache map[string]*Package
}

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{ModuleRoot: root, ModulePath: modPath}
	l.init()
	return l, nil
}

func (l *Loader) init() {
	if l.fset == nil {
		l.fset = token.NewFileSet()
		l.std = importer.ForCompiler(l.fset, "source", nil)
		l.cache = make(map[string]*Package)
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet {
	l.init()
	return l.fset
}

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
	}
}

// Load type-checks the package with the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	l.init()
	return l.load(path, make(map[string]bool))
}

// LoadDir type-checks the package in dir under the given import path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	l.init()
	return l.loadDir(dir, path, make(map[string]bool))
}

// ModulePackages returns the import paths of every package under the
// module root, skipping testdata, hidden and vendor directories.
func (l *Loader) ModulePackages() ([]string, error) {
	var out []string
	err := filepath.Walk(l.ModuleRoot, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		name := info.Name()
		if p != l.ModuleRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(p) {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleRoot, p)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.ModulePath)
		} else {
			out = append(out, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// dirFor maps an import path to a source directory, or "" when the path
// should be resolved as standard library.
func (l *Loader) dirFor(path string) string {
	if path == l.ModulePath {
		return l.ModuleRoot
	}
	if strings.HasPrefix(path, l.ModulePath+"/") {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
	}
	if l.ExtraRoot != "" {
		d := filepath.Join(l.ExtraRoot, filepath.FromSlash(path))
		if hasGoFiles(d) {
			return d
		}
	}
	return ""
}

func (l *Loader) load(path string, loading map[string]bool) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("lint: %s is not a module or corpus package", path)
	}
	return l.loadDir(dir, path, loading)
}

func (l *Loader) loadDir(dir, path string, loading map[string]bool) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	loading[path] = true
	defer delete(loading, path)

	ctx := build.Default
	bp, err := ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}

	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	conf := types.Config{
		Importer: &chainImporter{l: l, loading: loading},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(path, l.fset, files, pkg.Info)
	l.cache[path] = pkg
	return pkg, nil
}

// chainImporter resolves module/corpus imports through the loader and
// everything else through the GOROOT source importer.
type chainImporter struct {
	l       *Loader
	loading map[string]bool
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if c.l.dirFor(path) != "" {
		p, err := c.l.load(path, c.loading)
		if err != nil {
			return nil, err
		}
		if p.Types == nil {
			return nil, fmt.Errorf("lint: no type information for %s", path)
		}
		return p.Types, nil
	}
	return c.l.std.Import(path)
}
