// Package lint implements gridlint: a suite of static analysis passes
// enforcing the determinism and concurrency invariants the simulation's
// reproducibility claims rest on.
//
// The repo's core claim — bit-identical reruns of the paper's Grid'5000
// experiments in virtual time — holds only if every DES-driven state
// machine is a pure function of its inputs: no wall-clock reads, no
// unsorted map iteration feeding state or messages, no goroutines or
// unseeded randomness inside event handlers. Nothing in the language
// enforces that, so this package does.
//
// The design mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) but is self-contained: packages are loaded with go/parser
// and type-checked with go/types, resolving module-internal imports from
// the source tree and standard library imports from GOROOT source. That
// keeps the linter dependency-free, at the cost of the modular fact
// plumbing the x/tools driver provides — which the four passes here do
// not need.
//
// Suppression: a diagnostic is dropped when the offending line, or the
// line directly above it, carries a comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory by convention (reviewed, not enforced): an
// escape hatch without a recorded justification is how invariants rot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named pass over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces
	// and why.
	Doc string
	// AppliesTo reports whether the analyzer should run on the package
	// with the given import path. A nil AppliesTo runs everywhere the
	// driver points it.
	AppliesTo func(pkgPath string) bool
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
	// Chain, set by whole-program analyzers, is the call chain from an
	// entry point to the function containing the finding, outermost
	// first.
	Chain []ChainEntry `json:"chain,omitempty"`
}

// String renders the diagnostic the way go vet does, with the call chain
// (if any) appended.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
	if len(d.Chain) > 0 {
		names := make([]string, len(d.Chain))
		for i, c := range d.Chain {
			names[i] = c.Func
		}
		s += fmt.Sprintf("\n\tvia %s", strings.Join(names, " → "))
	}
	return s
}

// sortDiagnostics orders findings by position, then analyzer.
func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
}

// RunAnalyzers executes every applicable analyzer on the package and
// returns the surviving diagnostics sorted by position. Pragma usage is
// discarded; drivers that need the exemption audit use RunSuite.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	idx := newExemptionIndex(collectExemptions(pkg))
	var out []Diagnostic
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{Analyzer: a, Pkg: pkg}
		a.Run(pass)
		for _, d := range pass.diags {
			if !idx.suppresses(d) {
				out = append(out, d)
			}
		}
	}
	sortDiagnostics(out)
	return out
}

// Suite is the full gridlint configuration: per-package analyzers plus
// whole-program analyzers.
type Suite struct {
	Analyzers []*Analyzer
	Program   []*ProgramAnalyzer
}

// Names returns the set of valid analyzer names, for the exemption
// audit.
func (s Suite) Names() map[string]bool {
	out := make(map[string]bool)
	for _, a := range s.Analyzers {
		out[a.Name] = true
	}
	for _, a := range s.Program {
		out[a.Name] = true
	}
	return out
}

// Result is one whole-suite run over one program.
type Result struct {
	// Diagnostics are the surviving (non-exempt) findings, sorted.
	Diagnostics []Diagnostic
	// Exemptions are every //lint:allow pragma seen, with usage marked.
	Exemptions []*Exemption
}

// RunSuite executes the per-package analyzers on every package of the
// program and the whole-program analyzers on the program itself,
// suppressing findings covered by //lint:allow pragmas and recording
// which pragmas earned their keep.
func RunSuite(prog *Program, s Suite) Result {
	var exs []*Exemption
	for _, pkg := range prog.Packages {
		exs = append(exs, collectExemptions(pkg)...)
	}
	idx := newExemptionIndex(exs)

	var out []Diagnostic
	keep := func(diags []Diagnostic) {
		for _, d := range diags {
			if !idx.suppresses(d) {
				out = append(out, d)
			}
		}
	}
	for _, pkg := range prog.Packages {
		for _, a := range s.Analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			keep(pass.diags)
		}
	}
	keep(RunProgramAnalyzers(prog, s.Program))

	sortDiagnostics(out)
	sortExemptions(exs)
	return Result{Diagnostics: out, Exemptions: exs}
}

// All returns the gridlint per-package analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{
		DESDeterminism,
		EpochFence,
		FreelistDiscipline,
		LockDiscipline,
		MsgPurity,
		VirtualTime,
	}
}

// AllProgram returns the gridlint whole-program analyzer suite.
func AllProgram() []*ProgramAnalyzer {
	return []*ProgramAnalyzer{
		AllocHygiene,
		DetTaint,
	}
}

// DefaultSuite is the complete gridlint suite the driver and CI run.
func DefaultSuite() Suite {
	return Suite{Analyzers: All(), Program: AllProgram()}
}

// PathUnder reports whether the import path equals prefix or lives below
// it (prefix "a/b" matches "a/b" and "a/b/c", not "a/bc").
func PathUnder(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// anyUnder builds an AppliesTo func matching any of the given prefixes,
// compared against the path as given and with everything before an
// "internal/" or "cmd/" path segment stripped — so filters keep working
// both on real module paths (gridmutex/internal/des) and on the
// synthetic paths the test corpus loads packages under
// (dettaint/internal/util).
func anyUnder(prefixes ...string) func(string) bool {
	return func(pkgPath string) bool {
		cands := []string{pkgPath, stripModulePrefix(pkgPath)}
		for _, p := range prefixes {
			for _, c := range cands {
				if PathUnder(c, p) {
					return true
				}
			}
		}
		return false
	}
}

// stripModulePrefix cuts everything before the first "internal/" or
// "cmd/" segment at a path boundary, mirroring CallNode.Name.
func stripModulePrefix(pkgPath string) string {
	for _, seg := range []string{"internal/", "cmd/"} {
		if strings.HasPrefix(pkgPath, seg) {
			return pkgPath
		}
		if i := strings.Index(pkgPath, "/"+seg); i >= 0 {
			return pkgPath[i+1:]
		}
	}
	return pkgPath
}

// isPkgIdent reports whether e is an identifier naming an imported package
// with the given import path (e.g. the "time" in time.Now).
func isPkgIdent(info *types.Info, e ast.Expr, path string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// namedType reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func namedType(t types.Type, pkgPath, name string) bool {
	n, ok := derefNamed(t)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// derefNamed strips one level of pointer indirection and returns the
// named type underneath, if any.
func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// exprString renders an expression for diagnostics.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}
