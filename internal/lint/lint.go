// Package lint implements gridlint: a suite of static analysis passes
// enforcing the determinism and concurrency invariants the simulation's
// reproducibility claims rest on.
//
// The repo's core claim — bit-identical reruns of the paper's Grid'5000
// experiments in virtual time — holds only if every DES-driven state
// machine is a pure function of its inputs: no wall-clock reads, no
// unsorted map iteration feeding state or messages, no goroutines or
// unseeded randomness inside event handlers. Nothing in the language
// enforces that, so this package does.
//
// The design mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) but is self-contained: packages are loaded with go/parser
// and type-checked with go/types, resolving module-internal imports from
// the source tree and standard library imports from GOROOT source. That
// keeps the linter dependency-free, at the cost of the modular fact
// plumbing the x/tools driver provides — which the four passes here do
// not need.
//
// Suppression: a diagnostic is dropped when the offending line, or the
// line directly above it, carries a comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory by convention (reviewed, not enforced): an
// escape hatch without a recorded justification is how invariants rot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named pass over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces
	// and why.
	Doc string
	// AppliesTo reports whether the analyzer should run on the package
	// with the given import path. A nil AppliesTo runs everywhere the
	// driver points it.
	AppliesTo func(pkgPath string) bool
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic the way go vet does.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// allowRe matches suppression comments: //lint:allow <name> [reason].
var allowRe = regexp.MustCompile(`^//lint:allow\s+([a-z0-9_,]+)`)

// allowedLines returns, per file (by filename), the set of lines whose
// diagnostics from the named analyzer are suppressed. A comment suppresses
// its own line and the line below it, so both trailing and preceding
// placement work:
//
//	for k := range m { // lint:allow — NOT this; the marker form is:
//	//lint:allow desdeterminism keys feed a commutative sum
//	for k := range m {
func allowedLines(pkg *Package, analyzer string) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				names := strings.Split(m[1], ",")
				ok := false
				for _, n := range names {
					if n == analyzer || n == "all" {
						ok = true
					}
				}
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					out[pos.Filename] = lines
				}
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
	return out
}

// RunAnalyzers executes every applicable analyzer on the package and
// returns the surviving diagnostics sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{Analyzer: a, Pkg: pkg}
		a.Run(pass)
		allowed := allowedLines(pkg, a.Name)
		for _, d := range pass.diags {
			if lines := allowed[d.Pos.Filename]; lines != nil && lines[d.Pos.Line] {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// All returns the gridlint analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{
		DESDeterminism,
		LockDiscipline,
		MsgPurity,
		VirtualTime,
	}
}

// PathUnder reports whether the import path equals prefix or lives below
// it (prefix "a/b" matches "a/b" and "a/b/c", not "a/bc").
func PathUnder(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// anyUnder builds an AppliesTo func matching any of the given prefixes,
// compared against the path with the module prefix stripped — so filters
// keep working when the corpus loads packages under synthetic paths.
func anyUnder(prefixes ...string) func(string) bool {
	return func(pkgPath string) bool {
		trimmed := strings.TrimPrefix(pkgPath, "gridmutex/")
		for _, p := range prefixes {
			if PathUnder(pkgPath, p) || PathUnder(trimmed, p) {
				return true
			}
		}
		return false
	}
}

// isPkgIdent reports whether e is an identifier naming an imported package
// with the given import path (e.g. the "time" in time.Now).
func isPkgIdent(info *types.Info, e ast.Expr, path string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// namedType reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func namedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
