package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// CallGraph is a static over-approximation of the program's call
// structure, built from the type-checked ASTs alone:
//
//   - a call whose callee resolves to a declared function or a method on
//     a concrete receiver contributes one edge;
//   - a call through an interface method contributes an edge to every
//     method of that name on every program type satisfying the interface
//     (class-hierarchy analysis) — conservative, so reachability never
//     under-reports;
//   - calls inside a function literal are attributed to the enclosing
//     declared function, which is the right granularity for taint: a
//     closure's nondeterminism belongs to whoever wrote it;
//   - calls through plain func values are not resolved. The repo's own
//     callback plumbing always runs closures defined in DES packages, so
//     their bodies are still scanned via the attribution rule above.
//
// Functions whose bodies live outside the Program (standard library,
// unloaded packages) have no node; analyzers treat interesting external
// callees (time.Now, the global math/rand) as sources syntactically.
type CallGraph struct {
	Prog *Program
	// Nodes maps every function declared in the program to its node.
	Nodes map[*types.Func]*CallNode
}

// CallNode is one declared function or method.
type CallNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	Callees []*CallNode
	callees map[*CallNode]bool
}

// Name renders the node as pkg.Func or pkg.(Type).Method, with the
// module prefix stripped for readability.
func (n *CallNode) Name() string {
	pkg := n.Pkg.Path
	if i := strings.Index(pkg, "internal/"); i >= 0 {
		pkg = pkg[i:]
	} else if i := strings.Index(pkg, "cmd/"); i >= 0 {
		pkg = pkg[i:]
	}
	if recv := n.Fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		name := t.String()
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name()
		}
		return fmt.Sprintf("%s.(%s).%s", pkg, name, n.Fn.Name())
	}
	return pkg + "." + n.Fn.Name()
}

func (n *CallNode) addCallee(c *CallNode) {
	if c == nil || c == n {
		return
	}
	if n.callees == nil {
		n.callees = make(map[*CallNode]bool)
	}
	if n.callees[c] {
		return
	}
	n.callees[c] = true
	n.Callees = append(n.Callees, c)
}

// methodImpl is the CHA index key: an exact method name. The value lists
// every program-declared method with that name together with its
// receiver type, so an interface call resolves by filtering the list
// with types.Implements.
type methodImpl struct {
	recv types.Type // receiver's named type (not pointer)
	node *CallNode
}

// BuildCallGraph constructs the call graph of the program.
func BuildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{Prog: prog, Nodes: make(map[*types.Func]*CallNode)}

	// Pass 1: one node per declared function/method.
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Nodes[obj] = &CallNode{Fn: obj, Decl: fd, Pkg: pkg}
			}
		}
	}

	// CHA index: method name -> implementations on program types.
	impls := make(map[string][]methodImpl)
	for fn, node := range g.Nodes {
		sig := fn.Type().(*types.Signature)
		recv := sig.Recv()
		if recv == nil {
			continue
		}
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		impls[fn.Name()] = append(impls[fn.Name()], methodImpl{recv: t, node: node})
	}

	// Pass 2: edges.
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := g.Nodes[obj]
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					g.addCallEdges(node, pkg, call, impls)
					return true
				})
			}
		}
	}

	// Deterministic callee order, so chains and reports are stable.
	for _, node := range g.Nodes {
		sort.Slice(node.Callees, func(i, j int) bool {
			return node.Callees[i].Name() < node.Callees[j].Name()
		})
	}
	return g
}

// addCallEdges resolves one call expression into zero or more edges.
func (g *CallGraph) addCallEdges(from *CallNode, pkg *Package, call *ast.CallExpr, impls map[string][]methodImpl) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			from.addCallee(g.Nodes[fn])
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			recv := sel.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if iface, ok := recv.Underlying().(*types.Interface); ok {
				// Interface dispatch: CHA over program types.
				name := sel.Obj().Name()
				for _, impl := range impls[name] {
					if implementsIface(impl.recv, iface) {
						from.addCallee(impl.node)
					}
				}
				return
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				from.addCallee(g.Nodes[fn])
			}
			return
		}
		// Qualified call (pkgname.Func) or method expression.
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			from.addCallee(g.Nodes[fn])
		}
	}
}

// implementsIface reports whether T or *T satisfies the interface.
func implementsIface(t types.Type, iface *types.Interface) bool {
	if types.Implements(t, iface) {
		return true
	}
	return types.Implements(types.NewPointer(t), iface)
}

// ChainEntry is one hop of a reachability chain, innermost last.
type ChainEntry struct {
	// Func is the display name of the function (CallNode.Name).
	Func string `json:"func"`
	// File/Line locate its declaration.
	File string `json:"file"`
	Line int    `json:"line"`
}

// ReachableFrom runs a breadth-first search from the roots and returns,
// for every reachable node, its predecessor on a shortest chain (roots
// map to nil). skip prunes traversal: a node for which skip returns true
// is neither visited nor traversed through.
func (g *CallGraph) ReachableFrom(roots []*CallNode, skip func(*CallNode) bool) map[*CallNode]*CallNode {
	parent := make(map[*CallNode]*CallNode)
	queue := make([]*CallNode, 0, len(roots))
	for _, r := range roots {
		if skip != nil && skip(r) {
			continue
		}
		if _, seen := parent[r]; !seen {
			parent[r] = nil
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Callees {
			if skip != nil && skip(c) {
				continue
			}
			if _, seen := parent[c]; !seen {
				parent[c] = n
				queue = append(queue, c)
			}
		}
	}
	return parent
}

// Chain materializes the root→node chain recorded by ReachableFrom.
func (g *CallGraph) Chain(parent map[*CallNode]*CallNode, node *CallNode) []ChainEntry {
	var rev []*CallNode
	for n := node; n != nil; n = parent[n] {
		rev = append(rev, n)
		if parent[n] == nil {
			break
		}
	}
	out := make([]ChainEntry, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		n := rev[i]
		pos := g.Prog.Fset.Position(n.Decl.Name.Pos())
		out = append(out, ChainEntry{Func: n.Name(), File: pos.Filename, Line: pos.Line})
	}
	return out
}
