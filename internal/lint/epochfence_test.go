package lint_test

import (
	"testing"

	"gridmutex/internal/lint"
	"gridmutex/internal/lint/linttest"
)

func TestEpochFenceBad(t *testing.T) {
	linttest.Run(t, linttest.TestDataDir(t), lint.EpochFence, "epochfence/bad")
}

func TestEpochFenceGood(t *testing.T) {
	linttest.Run(t, linttest.TestDataDir(t), lint.EpochFence, "epochfence/good")
}
