package lint

import (
	"go/ast"
	"go/types"
)

// EpochFence enforces the crash-recovery rule that makes token
// regeneration safe (PR 4): once epochs exist, every inter-cluster
// message must identify which epoch (or, for intra-composition routing,
// which level) it belongs to, so a receiver can drop traffic from
// before a token regeneration instead of resurrecting a superseded
// token.
//
// The analyzer inspects every Send call whose callee takes (ID, Message)
// — the mutex transport shape, recognized structurally by the Message
// interface carrying Kind() and Size(). The message argument's static
// type must prove the fence:
//
//   - a struct carrying (possibly through embedded structs) a field of
//     named type Epoch — the recovery wrapper and control messages;
//   - or a field of named type Level — the composition envelope, whose
//     epoch is applied by the recovery layer wrapping it;
//   - or an int field named Round — per-probe control traffic fenced by
//     round number;
//   - or no fields at all — content-free heartbeats, which carry no
//     state a stale epoch could corrupt.
//
// A message whose static type is the bare interface is always flagged:
// the fence cannot be proven for a value of unknown shape, and the fix
// (wrap in recovery.Wrapped before the raw send) also makes the type
// concrete.
var EpochFence = &Analyzer{
	Name: "epochfence",
	Doc: "require inter-cluster sends in epoch-aware packages to carry an " +
		"Epoch, Level, or Round fence (or be empty control messages)",
	AppliesTo: anyUnder(
		"internal/core",
		"internal/recovery",
	),
	Run: runEpochFence,
}

func runEpochFence(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkEpochSend(p, call)
			return true
		})
	}
}

func checkEpochSend(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Send" || len(call.Args) != 2 {
		return
	}
	sig, ok := p.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Params().Len() != 2 {
		return
	}
	if !isMessageIface(sig.Params().At(1).Type()) {
		return
	}
	arg := call.Args[1]
	t := p.TypeOf(arg)
	if t == nil {
		return
	}
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		p.Reportf(arg.Pos(), "send of interface-typed message %s cannot be proven epoch-fenced; wrap it in the epoch wrapper before the raw send", exprString(arg))
		return
	}
	named, ok := derefNamed(t)
	if !ok {
		p.Reportf(arg.Pos(), "send of %s (type %s) is not epoch-fenced; inter-cluster messages must carry an Epoch, Level, or Round field", exprString(arg), t.String())
		return
	}
	if !epochFenced(named, make(map[*types.Named]bool)) {
		p.Reportf(arg.Pos(), "send of %s (type %s) is not epoch-fenced: no Epoch, Level, or Round field; wrap it in the epoch wrapper so stale-epoch traffic is dropped", exprString(arg), named.Obj().Name())
	}
}

// isMessageIface recognizes the mutex.Message shape: an interface whose
// method set includes Kind and Size.
func isMessageIface(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	var hasKind, hasSize bool
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "Kind":
			hasKind = true
		case "Size":
			hasSize = true
		}
	}
	return hasKind && hasSize
}

// epochFenced reports whether the named struct type carries a fence
// field, searching embedded structs recursively.
func epochFenced(named *types.Named, seen map[*types.Named]bool) bool {
	if seen[named] {
		return false
	}
	seen[named] = true
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	if st.NumFields() == 0 {
		return true // content-free control message (heartbeat)
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if fn, ok := derefNamed(f.Type()); ok {
			switch fn.Obj().Name() {
			case "Epoch", "Level":
				return true
			}
			if f.Embedded() && epochFenced(fn, seen) {
				return true
			}
		}
		if f.Name() == "Round" {
			if basic, ok := f.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsInteger != 0 {
				return true
			}
		}
	}
	return false
}
