// Package good holds the corrected counterparts of the bad corpus: every
// construct here must pass lockdiscipline without a diagnostic.
package good

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
}

// balanced releases where it acquires.
func (b *box) balanced() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return 1
}

// sendAfterUnlock snapshots state under the lock and sends outside it.
func (b *box) sendAfterUnlock() {
	b.mu.Lock()
	v := 1
	b.mu.Unlock()
	b.ch <- v
}

// earlyReturn releases on every path.
func (b *box) earlyReturn(stop bool) {
	b.mu.Lock()
	if stop {
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
}

// rlocked pairs RLock with RUnlock.
type rbox struct {
	mu sync.RWMutex
	n  int
}

func (b *rbox) rlocked() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.n
}

// byPointer shares the lock instead of copying it.
func byPointer(mu *sync.Mutex) {
	mu.Lock()
	mu.Unlock()
}
