// Package bad seeds the lock misuse patterns the analyzer must catch.
package bad

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
}

// leak takes the lock and exits without releasing it.
func (b *box) leak() {
	b.mu.Lock() // want `b\.mu\.Lock without a Unlock on b\.mu`
	b.ch <- 1   // want `channel send while holding mutex b\.mu`
}

// sendUnderDefer holds the mutex (via defer) across a channel send.
func (b *box) sendUnderDefer() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- 2 // want `channel send while holding mutex b\.mu`
}

// sendInSelect sends from a select case while holding the mutex.
func (b *box) sendInSelect() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.ch <- 3: // want `channel send while holding mutex b\.mu`
	default:
	}
}

type rbox struct {
	mu sync.RWMutex
}

// rleak pairs RLock with nothing.
func (b *rbox) rleak() int {
	b.mu.RLock() // want `b\.mu\.RLock without a RUnlock on b\.mu`
	return 0
}

// byValue copies the lock state into the callee.
func byValue(mu sync.Mutex) { // want `sync\.Mutex passed by value as a parameter`
	_ = mu
}

// rwByValue does the same with an RWMutex.
func rwByValue(mu sync.RWMutex) { // want `sync\.RWMutex passed by value as a parameter`
	_ = mu
}
