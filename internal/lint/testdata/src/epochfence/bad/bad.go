// Package bad seeds unfenced inter-cluster sends: a payload struct with
// no Epoch, Level, or Round field, and a send whose static type is the
// bare Message interface.
package bad

// Message mirrors the mutex transport contract the analyzer keys on.
type Message interface {
	Kind() string
	Size() int
}

// ID is the process identifier.
type ID uint64

// Env is the transport with the (ID, Message) send shape.
type Env interface {
	Send(to ID, m Message)
	Local(f func())
}

// Request carries state but no fence: stale-epoch requests would be
// indistinguishable from live ones at the receiver.
type Request struct {
	From ID
	Seq  uint64
}

func (r Request) Kind() string { return "request" }
func (r Request) Size() int    { return 16 }

type node struct {
	env Env
}

func (n *node) broadcast(peers []ID) {
	for _, p := range peers {
		n.env.Send(p, Request{From: 1, Seq: 2}) // want `send of Request{…} \(type Request\) is not epoch-fenced: no Epoch, Level, or Round field`
	}
}

func (n *node) forward(to ID, m Message) {
	n.env.Send(to, m) // want `send of interface-typed message m cannot be proven epoch-fenced`
}
