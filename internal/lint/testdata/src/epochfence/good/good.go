// Package good covers every accepted fence shape: an Epoch field, a
// Level field through an embedded envelope, an int Round, a content-free
// heartbeat, and a pointer to a fenced struct.
package good

type Message interface {
	Kind() string
	Size() int
}

type ID uint64

type Env interface {
	Send(to ID, m Message)
}

// Epoch numbers token generations.
type Epoch uint64

// Level indexes the composition layer.
type Level uint8

// Wrapped is the epoch wrapper.
type Wrapped struct {
	E     Epoch
	Inner Message
}

func (w Wrapped) Kind() string { return w.Inner.Kind() }
func (w Wrapped) Size() int    { return w.Inner.Size() + 8 }

// Envelope carries the level fence.
type Envelope struct {
	Level Level
	Inner Message
}

func (e Envelope) Kind() string { return e.Inner.Kind() }
func (e Envelope) Size() int    { return e.Inner.Size() + 1 }

// pooledEnvelope embeds the fence.
type pooledEnvelope struct {
	Envelope
}

// Heartbeat is content-free: nothing a stale epoch could corrupt.
type Heartbeat struct{}

func (Heartbeat) Kind() string { return "heartbeat" }
func (Heartbeat) Size() int    { return 1 }

// ProbeAck is fenced by round number.
type ProbeAck struct {
	Round int
}

func (ProbeAck) Kind() string { return "probe-ack" }
func (ProbeAck) Size() int    { return 9 }

type node struct {
	env Env
}

func (n *node) sendAll(to ID, inner Message) {
	n.env.Send(to, Wrapped{E: 1, Inner: inner})
	n.env.Send(to, Envelope{Level: 0, Inner: inner})
	n.env.Send(to, &pooledEnvelope{})
	n.env.Send(to, Heartbeat{})
	n.env.Send(to, ProbeAck{Round: 3})
}
