// Package simnet (corpus) exercises the hot-path allocation checks: the
// package path puts it inside the analyzer's hot scope, and the root
// function names (Send, Deliver) mark the entry points. Everything
// flagged lives on a path reachable from a root; the same constructs in
// Setup (not a root, not called from one) stay unreported.
package simnet

import "fmt"

// Message mirrors the transport payload shape.
type Message struct {
	Kind string
	Size int
}

// Net is the corpus network.
type Net struct {
	names  map[int]string
	counts map[string]int64
	sink   func(Message)
}

// Send is a hot root by name.
func (n *Net) Send(to int, m Message) {
	f := func() { n.deliver(to, m) } // want `function literal on the hot path allocates its closure environment per event`
	f()
	key := n.names[to] + m.Kind // want `string concatenation on the hot path allocates per event`
	n.counts[key]++
}

// deliver is not a root by name but is reachable from Send, so its body
// is scanned too.
func (n *Net) deliver(to int, m Message) {
	if n.counts == nil {
		n.counts = make(map[string]int64) // want `make\(map\) on the hot path allocates per event`
	}
	fmt.Printf("deliver %d\n", to) // want `fmt.Printf on the hot path boxes every argument`
	n.box(m)                       // want `struct value m boxed into interface parameter on the hot path`
}

// box takes an interface parameter; deliver's struct-typed argument is
// boxed at the call site — flagged there, in box's caller.
func (n *Net) box(v any) { _ = v }

// Deliver is a hot root exercising new and boxing.
func (n *Net) Deliver(m Message) {
	p := new(Message) // want `new\(Message\) on the hot path allocates per event`
	*p = m
	n.box(m) // want `struct value m boxed into interface parameter on the hot path`
	if m.Size < 0 {
		panic(fmt.Sprintf("bad size %d", m.Size)) // panic formatting is cold: no finding
	}
}

// Setup shares every flagged construct but is neither a root nor
// reachable from one: construction-time allocation is fine.
func (n *Net) Setup(procs int) {
	n.names = make(map[int]string)
	n.counts = make(map[string]int64)
	n.sink = func(m Message) { fmt.Println("setup sink", m.Kind+"!") }
}
