// Package bad seeds virtual-time arithmetic that hard-codes wall-clock
// magnitudes outside the latency model.
package bad

import "time"

type sim struct{ now time.Duration }

func (s *sim) Now() time.Duration { return s.now }

func deadlines(s *sim, rto time.Duration) {
	deadline := s.Now() + 50*time.Millisecond // want `mixes a raw duration literal`
	_ = deadline
	if s.Now() > time.Second { // want `mixes a raw duration literal`
		return
	}
	elapsed := s.Now() - time.Millisecond // want `mixes a raw duration literal`
	_ = elapsed
	if rto < 10*time.Microsecond { // want `mixes a raw duration literal`
		return
	}
}
