// Package good shows the sanctioned ways to do virtual-time arithmetic:
// none of this may be flagged.
package good

import "time"

type sim struct{ now time.Duration }

func (s *sim) Now() time.Duration { return s.now }

// opts names every magnitude once, so call sites stay literal-free.
type opts struct{ RTO time.Duration }

func deadlines(s *sim, o opts) {
	// Named configuration values may be mixed freely.
	deadline := s.Now() + o.RTO
	_ = deadline
	// Constant-only arithmetic (declaring a default) is legal.
	def := 250 * time.Millisecond
	_ = def
	// Scaling a virtual quantity by a dimensionless constant is legal.
	long := 4 * o.RTO
	if long > o.RTO {
		return
	}
	//lint:allow virtualtime boot grace period is inherently wall-time
	grace := s.Now() + 5*time.Second
	_ = grace
}
