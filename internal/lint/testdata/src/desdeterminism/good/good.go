// Package good holds the corrected counterparts of the bad corpus: every
// construct here must pass desdeterminism without a diagnostic.
package good

import (
	"math/rand"
	"sort"
)

type state struct {
	pending map[int]int
	rng     *rand.Rand
}

func newState(seed int64) *state {
	return &state{pending: map[int]int{}, rng: rand.New(rand.NewSource(seed))}
}

// outstanding counts — commutative accumulation is order-independent.
func (s *state) outstanding() int {
	n := 0
	for _, v := range s.pending {
		if v > 0 {
			n++
		}
	}
	return n
}

// total sums with a compound assignment.
func (s *state) total() int {
	sum := 0
	for _, v := range s.pending {
		sum += v
	}
	return sum
}

// keys uses the collect-then-sort idiom.
func (s *state) keys() []int {
	out := make([]int, 0, len(s.pending))
	for k := range s.pending {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// anyNegative early-returns a constant: same answer in any order.
func (s *state) anyNegative() bool {
	for _, v := range s.pending {
		if v < 0 {
			return true
		}
	}
	return false
}

// clearAcked deletes the inspected key, which the spec permits and which
// cannot leak order.
func (s *state) clearAcked(cum int) {
	for k := range s.pending {
		if k <= cum {
			delete(s.pending, k)
		}
	}
}

// jitter draws from a seeded generator, never the global one.
func (s *state) jitter() float64 { return s.rng.Float64() }

// dump is genuinely order-dependent but deliberate: the escape hatch
// names the analyzer and records why.
func (s *state) dump(emit func(k, v int)) {
	//lint:allow desdeterminism debug dump ordering is not part of any trace or metric
	for k, v := range s.pending {
		emit(k, v)
	}
}
