// Package bad seeds every class of DES nondeterminism the analyzer must
// catch.
package bad

import (
	"math/rand"
	"time"
)

type state struct {
	acks map[int]bool
	out  []int
}

func (s *state) handle(send func(to int)) {
	go s.flush()                  // want `go statement`
	deadline := time.Now()        // want `time\.Now reads the wall clock`
	_ = deadline
	time.Sleep(time.Millisecond)  // want `time\.Sleep blocks on the wall clock`
	if rand.Intn(2) == 0 {        // want `math/rand\.Intn uses the global generator`
		return
	}
	for to := range s.acks { // want `iteration over map`
		send(to)
	}
}

// collectNoSort gathers keys but never sorts them: order leaks.
func (s *state) collectNoSort() {
	for k := range s.acks { // want `iteration over map`
		s.out = append(s.out, k)
	}
}

func (s *state) flush() {}

func (s *state) wait(ch chan int) {
	select { // want `select statement`
	case <-ch:
	default:
	}
}
