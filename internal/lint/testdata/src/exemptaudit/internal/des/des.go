// Package des (corpus) carries one pragma of every audit category: a
// live one (suppresses a real finding, has a reason), a stale one
// excusing code that no longer trips anything, one naming an analyzer
// that does not exist, and one with no recorded reason.
package des

// Spawn really does violate desdeterminism; the pragma is live and
// reasoned, so the audit stays quiet about it.
func Spawn(f func()) {
	//lint:allow desdeterminism corpus: deliberate violation kept to prove live pragmas pass the audit
	go f()
}

// Sum is order-independent, so the pragma below suppresses nothing.
func Sum(m map[int]int) int {
	total := 0
	//lint:allow desdeterminism left behind after the loop body was made order-independent
	for _, v := range m {
		total += v
	}
	return total
}

// Typo names an analyzer that is not in the suite.
func Typo(f func()) {
	//lint:allow determinism misspelled analyzer name that suppresses nothing
	go f()
}

// Quiet has a live pragma with no reason recorded.
func Quiet(f func()) {
	//lint:allow desdeterminism
	go f()
}
