// Package bad seeds freelist lifecycle violations: a pooled box that can
// leak on an early return, a use after the box goes back on the list,
// and three ways of retaining a box past its delivery.
package bad

type box struct {
	payload int
}

type pool struct {
	boxes []*box
	last  *box
	kept  []*box
	hooks []func() int
}

func send(b *box) {}

// LeakOnReturn pops a box but the error path returns before the box is
// sent or put back: the box leaks.
func (p *pool) LeakOnReturn(fail bool) {
	var b *box
	if n := len(p.boxes); n > 0 {
		b = p.boxes[n-1] // want `pooled b popped from the freelist reaches a return without a send, return, or put`
		p.boxes = p.boxes[:n-1]
	} else {
		b = new(box)
	}
	if fail {
		return
	}
	send(b)
}

// UseAfterPut reads the box after pushing it back on the freelist.
func (p *pool) UseAfterPut(b *box) int {
	p.boxes = append(p.boxes, b)
	return b.payload // want `pooled b used after its freelist put`
}

// Retain stores the box where it outlives the delivery.
func (p *pool) Retain(b *box) {
	p.last = b                 // want `pooled b stored into p.last outlives its delivery`
	p.kept = append(p.kept, b) // want `pooled b appended to non-freelist slice p.kept`
	p.hooks = append(p.hooks, func() int {
		return b.payload // want `pooled b captured by closure outlives its delivery`
	})
}
