// Package good mirrors the real pooled-envelope idioms: pop-fill-send,
// copy-out-then-put, grow with new on an empty list. None of it trips
// the lifecycle checks.
package good

type box struct {
	payload int
}

type pool struct {
	boxes []*box
	out   func(*box)
}

// Send pops (or grows), fills, and always hands the box onward.
func (p *pool) Send(v int) {
	var b *box
	if n := len(p.boxes); n > 0 {
		b = p.boxes[n-1]
		p.boxes = p.boxes[:n-1]
	} else {
		b = new(box)
	}
	b.payload = v
	p.out(b)
}

// Deliver copies the value out, clears the box, and puts it back; the
// box is dead afterwards.
func (p *pool) Deliver(b *box) int {
	v := b.payload
	b.payload = 0
	p.boxes = append(p.boxes, b)
	return v
}

// Passthrough returns the box to the caller: consumption by return.
func (p *pool) Passthrough() *box {
	if n := len(p.boxes); n > 0 {
		b := p.boxes[n-1]
		p.boxes = p.boxes[:n-1]
		return b
	}
	return new(box)
}
