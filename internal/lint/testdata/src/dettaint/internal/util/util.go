// Package util is a helper package OUTSIDE the desdeterminism package
// list: the file-local pass never looks at it, which is exactly the
// blind spot the whole-program taint analyzer exists to close. Its
// findings appear here only because internal/harness (a DES entry
// package) reaches into it.
package util

import (
	"math/rand"
	"time"
)

// Stamp is reached from harness.Run → util.Stamp: the wall-clock read
// taints the DES even though this package is out of desdeterminism's
// scope.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock on a path reachable from DES entry point internal/harness.Run`
}

// Jitter is reached transitively (harness.Run → util.Stamp is the
// shortest chain, but Jitter is called from Stamp's sibling path via
// harness.Run → util.Pick → util.Jitter).
func Jitter() int {
	return rand.Intn(10) // want `math/rand.Intn uses the global generator on a path reachable from DES entry point internal/harness.Run`
}

// Pick forwards into Jitter; it is itself clean, so the only diagnostic
// on the chain lands in Jitter.
func Pick() int {
	return Jitter()
}

// Background spawns a goroutine and is reachable, so the go statement is
// tainted too.
func Background(f func()) {
	go f() // want `go statement reachable from DES entry point internal/harness.Run`
}

// Orphan also reads the wall clock but is NOT reachable from any DES
// entry point — no function in the program calls it. Reachability
// precision: no diagnostic here.
func Orphan() time.Time {
	return time.Now()
}
