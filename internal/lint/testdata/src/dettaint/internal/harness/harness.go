// Package harness mimics a DES entry package (its path ends in
// internal/harness, which is on the entry list). The package is clean
// under the file-local desdeterminism pass — every nondeterminism source
// lives one package over, in util — so all want annotations sit in
// util's sources.
package harness

import "dettaint/internal/util"

// Run is an exported entry point; everything it reaches is in the DES
// slice of the program.
func Run(reps int) int64 {
	var acc int64
	for i := 0; i < reps; i++ {
		acc += util.Stamp()
		acc += int64(util.Pick())
	}
	util.Background(func() {})
	return acc
}

// internalOnly is unexported, so it is not a root; it is also never
// called. The wall-clock read inside stays unreported: unexported dead
// code in an entry package is desdeterminism's business (which does
// cover this package in the real tree), not taint's.
func internalOnly() int64 {
	return util.Stamp()
}
