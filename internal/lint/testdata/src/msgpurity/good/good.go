// Package good holds pure messages and non-message structs that may
// legally hold anything: none of this may be flagged.
package good

type ID int32

// Token carries plain value slices, like Suzuki–Kasami's LN/Q arrays.
type Token struct {
	LN []int64
	Q  []ID
}

func (Token) Kind() string { return "good.token" }
func (t Token) Size() int  { return 16 + 8*len(t.LN) }

// node is ordinary process state, not a message: impure fields are fine.
type node struct {
	peers map[ID]bool
	next  *node
	stop  chan struct{}
}

// Message mirrors the mutex.Message contract.
type Message interface {
	Kind() string
	Size() int
}

// Inner wraps a payload behind an interface, the sanctioned way to nest
// messages.
type Inner struct {
	Gen int64
	M   Message
}

func (i Inner) Kind() string { return i.M.Kind() }
func (i Inner) Size() int    { return i.M.Size() + 8 }
