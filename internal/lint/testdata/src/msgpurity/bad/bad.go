// Package bad seeds message structs carrying shared mutable state.
package bad

type shared struct{ n int }

type Token struct {
	Owner *shared       // want `field Owner`
	Peers []*shared     // want `field Peers`
	Acks  map[int]bool  // want `field Acks`
	Done  chan struct{} // want `field Done`
	Hook  func()        // want `field Hook`
}

func (Token) Kind() string { return "bad.token" }
func (Token) Size() int    { return 1 }

// meta is impure one level down; Request reaches it through a nested
// struct field.
type meta struct{ owner *shared }

type Request struct {
	Seq  int64
	Meta meta // want `field Meta`
}

func (Request) Kind() string { return "bad.request" }
func (Request) Size() int    { return 16 }
