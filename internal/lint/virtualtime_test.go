package lint_test

import (
	"testing"

	"gridmutex/internal/lint"
	"gridmutex/internal/lint/linttest"
)

func TestVirtualTimeBad(t *testing.T) {
	linttest.Run(t, linttest.TestDataDir(t), lint.VirtualTime, "virtualtime/bad")
}

func TestVirtualTimeGood(t *testing.T) {
	linttest.Run(t, linttest.TestDataDir(t), lint.VirtualTime, "virtualtime/good")
}
