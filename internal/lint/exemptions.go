package lint

import (
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// allowRe matches suppression comments: //lint:allow <names> <reason>.
// Names are comma-separated analyzer names (or "all"); everything after
// them is the recorded justification.
var allowRe = regexp.MustCompile(`^//lint:allow\s+([a-z0-9_,-]+)[ \t]*(.*)$`)

// Exemption is one //lint:allow pragma found in source. It suppresses
// diagnostics of the named analyzers on its own line and the line
// directly below, so both trailing and preceding placement work.
type Exemption struct {
	// Pos locates the pragma comment.
	Pos token.Position `json:"pos"`
	// Analyzers are the names the pragma suppresses ("all" matches every
	// analyzer).
	Analyzers []string `json:"analyzers"`
	// Reason is the recorded justification (text after the names).
	Reason string `json:"reason"`
	// Used reports whether the pragma suppressed at least one diagnostic
	// in the run that collected it. A pragma that suppresses nothing is
	// stale: either the code it excused is gone, or it never matched —
	// both rot the invariant it punched a hole in.
	Used bool `json:"used"`
}

// collectExemptions gathers every pragma of one package.
func collectExemptions(pkg *Package) []*Exemption {
	var out []*Exemption
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				names := strings.Split(m[1], ",")
				for i := range names {
					names[i] = strings.TrimSpace(names[i])
				}
				out = append(out, &Exemption{
					Pos:       pkg.Fset.Position(c.Pos()),
					Analyzers: names,
					Reason:    strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return out
}

// exemptionIndex answers "is this diagnostic suppressed?" and marks the
// matching pragma used.
type exemptionIndex struct {
	// byLine maps filename -> line -> pragmas whose scope covers it.
	byLine map[string]map[int][]*Exemption
}

func newExemptionIndex(exs []*Exemption) *exemptionIndex {
	idx := &exemptionIndex{byLine: make(map[string]map[int][]*Exemption)}
	for _, e := range exs {
		lines := idx.byLine[e.Pos.Filename]
		if lines == nil {
			lines = make(map[int][]*Exemption)
			idx.byLine[e.Pos.Filename] = lines
		}
		lines[e.Pos.Line] = append(lines[e.Pos.Line], e)
		lines[e.Pos.Line+1] = append(lines[e.Pos.Line+1], e)
	}
	return idx
}

// suppresses reports whether a pragma covers the diagnostic, marking the
// first matching pragma used.
func (idx *exemptionIndex) suppresses(d Diagnostic) bool {
	lines := idx.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, e := range lines[d.Pos.Line] {
		for _, name := range e.Analyzers {
			if name == d.Analyzer || name == "all" {
				e.Used = true
				return true
			}
		}
	}
	return false
}

// AuditName is the analyzer name exemption-audit diagnostics carry.
// Audit findings cannot themselves be suppressed with //lint:allow: a
// pragma excusing a stale pragma is exactly the rot the audit exists to
// stop.
const AuditName = "exemption-audit"

// AuditExemptions cross-checks the pragmas of a finished run:
//
//   - a pragma that suppressed nothing is stale and must be deleted;
//   - a pragma naming an analyzer the suite does not contain is a typo
//     that silently suppresses nothing;
//   - a pragma without a reason is an escape hatch with no recorded
//     justification, which is how invariants rot (the reason used to be
//     "mandatory by convention"; the audit makes it mechanical).
//
// known is the set of valid analyzer names (plus the implicit "all").
func AuditExemptions(exs []*Exemption, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, e := range exs {
		for _, name := range e.Analyzers {
			if name != "all" && !known[name] {
				out = append(out, Diagnostic{
					Analyzer: AuditName,
					Pos:      e.Pos,
					Message:  "//lint:allow names unknown analyzer " + name + "; it suppresses nothing",
				})
			}
		}
		if !e.Used {
			out = append(out, Diagnostic{
				Analyzer: AuditName,
				Pos:      e.Pos,
				Message:  "stale //lint:allow " + strings.Join(e.Analyzers, ",") + ": it no longer suppresses any diagnostic; delete it",
			})
		}
		if e.Reason == "" {
			out = append(out, Diagnostic{
				Analyzer: AuditName,
				Pos:      e.Pos,
				Message:  "//lint:allow " + strings.Join(e.Analyzers, ",") + " without a reason; record why the invariant does not apply here",
			})
		}
	}
	sortDiagnostics(out)
	return out
}

// sortExemptions orders pragmas by position for stable output.
func sortExemptions(exs []*Exemption) {
	sort.Slice(exs, func(i, j int) bool {
		a, b := exs[i].Pos, exs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
}
