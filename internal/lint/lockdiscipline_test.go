package lint_test

import (
	"testing"

	"gridmutex/internal/lint"
	"gridmutex/internal/lint/linttest"
)

func TestLockDisciplineBad(t *testing.T) {
	linttest.Run(t, linttest.TestDataDir(t), lint.LockDiscipline, "lockdiscipline/bad")
}

func TestLockDisciplineGood(t *testing.T) {
	linttest.Run(t, linttest.TestDataDir(t), lint.LockDiscipline, "lockdiscipline/good")
}
