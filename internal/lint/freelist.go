package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FreelistDiscipline enforces the lifecycle rules of the pooled-envelope
// freelists PR 5 introduced (core's boxes []*pooledEnvelope). A pool
// only keeps the hot path allocation-free if three invariants hold:
//
//   - a value popped off a freelist is consumed on every path out of
//     the function — passed onward (Send), returned, or pushed back;
//     a path that returns without doing any of those leaks the box and
//     the pool drains back into allocation;
//   - a value pushed back (fl = append(fl, v)) is dead: any later use
//     in the same block is a use-after-put, reading a box the next pop
//     may already have handed to someone else;
//   - a pooled value never outlives its delivery: storing it into a
//     field or element of something else, appending it to a non-pool
//     slice, or capturing it in a closure retains an aliased box whose
//     contents will be rewritten on reuse.
//
// The analyzer recognizes pools structurally: a struct field of type
// []*T (T a struct declared in the same package) whose name contains
// "box", "free" or "pool". Variables of type *T for a pooled T are then
// tracked through each function body.
var FreelistDiscipline = &Analyzer{
	Name: "freelist",
	Doc: "enforce freelist lifecycle: pooled values consumed on all return " +
		"paths, never used after put, never retained past delivery",
	AppliesTo: anyUnder(
		"internal/des",
		"internal/simnet",
		"internal/core",
	),
	Run: runFreelist,
}

// poolNameFragments mark a slice field as a freelist.
var poolNameFragments = []string{"box", "free", "pool"}

func runFreelist(p *Pass) {
	ps := findPools(p.Pkg)
	if len(ps.elems) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, obj := range pooledVars(p.Pkg, fd, ps) {
				checkPooledVar(p, fd, obj, ps)
			}
		}
	}
}

// pools records the freelists of one package: the box element types
// (which variables to track) and the specific slice fields that are
// freelists (which appends are puts — another slice of the same element
// type is retention, not recycling).
type pools struct {
	elems  map[*types.Named]bool
	fields map[types.Object]bool
}

// findPools finds every freelist field declared in the package.
func findPools(pkg *Package) pools {
	out := pools{elems: make(map[*types.Named]bool), fields: make(map[types.Object]bool)}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if len(field.Names) == 0 {
					continue
				}
				pooly := false
				for _, name := range field.Names {
					lower := strings.ToLower(name.Name)
					for _, frag := range poolNameFragments {
						if strings.Contains(lower, frag) {
							pooly = true
						}
					}
				}
				if !pooly {
					continue
				}
				if elem, ok := pointerStructElem(pkg, pkg.Info.TypeOf(field.Type)); ok {
					out.elems[elem] = true
					for _, name := range field.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							out.fields[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// pointerStructElem matches []*T for T a named struct of this package.
func pointerStructElem(pkg *Package, t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return nil, false
	}
	ptr, ok := slice.Elem().(*types.Pointer)
	if !ok {
		return nil, false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() != pkg.Types {
		return nil, false
	}
	_, isStruct := named.Underlying().(*types.Struct)
	return named, isStruct
}

// isFreelistExpr reports whether e denotes one of the package's
// freelist fields.
func isFreelistExpr(pkg *Package, ps pools, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return ps.fields[pkg.Info.Uses[e]] || ps.fields[pkg.Info.Defs[e]]
	case *ast.SelectorExpr:
		return ps.fields[pkg.Info.Uses[e.Sel]]
	}
	return false
}

// pooledVars collects the variables of pooled pointer type a function
// declares — explicitly or implicitly (type-switch case vars).
func pooledVars(pkg *Package, fd *ast.FuncDecl, ps pools) []*types.Var {
	var out []*types.Var
	seen := make(map[*types.Var]bool)
	add := func(obj types.Object) {
		v, ok := obj.(*types.Var)
		if !ok || seen[v] {
			return
		}
		ptr, ok := v.Type().(*types.Pointer)
		if !ok {
			return
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok || !ps.elems[named] {
			return
		}
		seen[v] = true
		out = append(out, v)
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pkg.Info.Defs[n]; obj != nil {
				add(obj)
			}
		case *ast.CaseClause:
			if obj := pkg.Info.Implicits[n]; obj != nil {
				add(obj)
			}
		}
		return true
	})
	return out
}

// checkPooledVar runs the three lifecycle checks for one pooled variable
// in one function.
func checkPooledVar(p *Pass, fd *ast.FuncDecl, obj *types.Var, ps pools) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkPooledAssign(p, fd, n, obj, ps)
		case *ast.FuncLit:
			checkClosureCapture(p, n, obj)
			return false
		}
		return true
	})
}

// checkPooledAssign handles one assignment mentioning the pooled var:
// get (pop off the freelist), put (append back), or retention.
func checkPooledAssign(p *Pass, fd *ast.FuncDecl, asg *ast.AssignStmt, obj *types.Var, ps pools) {
	pkg := p.Pkg
	// Get: obj = fl[i]. The popped value must be consumed before every
	// exit from the function.
	if len(asg.Lhs) == 1 && len(asg.Rhs) == 1 && identFor(pkg, asg.Lhs[0], obj) {
		if idx, ok := asg.Rhs[0].(*ast.IndexExpr); ok && isFreelistExpr(pkg, ps, idx.X) {
			checkConsumedAfterGet(p, fd, asg, obj, ps)
		}
	}
	for i, lhs := range asg.Lhs {
		rhs := asg.Rhs[0]
		if len(asg.Rhs) == len(asg.Lhs) {
			rhs = asg.Rhs[i]
		}
		// Mentions inside nested function literals belong to the closure
		// capture check, which reports at the capturing use.
		if !mentionsObjOutsideClosures(pkg, rhs, obj) {
			continue
		}
		if call, ok := appendCall(rhs); ok {
			if isFreelistExpr(pkg, ps, call.Args[0]) {
				// Put: fl = append(fl, obj). Anything after it in the
				// same block reads a recycled box.
				checkDeadAfterPut(p, fd, asg, obj)
			} else {
				p.Reportf(asg.Pos(), "pooled %s appended to non-freelist slice %s retains the box past its delivery; copy the value out instead", obj.Name(), exprString(call.Args[0]))
			}
			continue
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if !identFor(pkg, l.X, obj) {
				p.Reportf(asg.Pos(), "pooled %s stored into %s outlives its delivery; the box will be rewritten on reuse — copy the value out instead", obj.Name(), exprString(lhs))
			}
		case *ast.IndexExpr:
			p.Reportf(asg.Pos(), "pooled %s stored into %s outlives its delivery; the box will be rewritten on reuse — copy the value out instead", obj.Name(), exprString(lhs))
		}
	}
}

// checkConsumedAfterGet scans forward from the get through the enclosing
// statement lists: the pooled value must be consumed (call argument,
// return value, or freelist put) before a return is reached or the
// function body ends.
func checkConsumedAfterGet(p *Pass, fd *ast.FuncDecl, get ast.Stmt, obj *types.Var, ps pools) {
	path := stmtPath(fd.Body, get)
	for level := len(path) - 1; level >= 0; level-- {
		step := path[level]
		for _, s := range step.list[step.idx+1:] {
			if consumesObj(p.Pkg, s, obj, ps) {
				return
			}
			if containsReturn(s) {
				p.Reportf(get.Pos(), "pooled %s popped from the freelist reaches a return without a send, return, or put; the box leaks and the pool drains back into allocation", obj.Name())
				return
			}
		}
	}
	p.Reportf(get.Pos(), "pooled %s popped from the freelist reaches the end of %s without a send, return, or put; the box leaks and the pool drains back into allocation", obj.Name(), fd.Name.Name)
}

// checkDeadAfterPut flags uses of the pooled var after its freelist put
// in the same statement list.
func checkDeadAfterPut(p *Pass, fd *ast.FuncDecl, put ast.Stmt, obj *types.Var) {
	path := stmtPath(fd.Body, put)
	if len(path) == 0 {
		return
	}
	step := path[len(path)-1]
	for _, s := range step.list[step.idx+1:] {
		if mentionsObj(p.Pkg, s, obj) {
			p.Reportf(s.Pos(), "pooled %s used after its freelist put; the box may already be handed out again — move this before the put", obj.Name())
		}
	}
}

// checkClosureCapture flags pooled vars captured by a closure declared
// after them: the closure may run after the box is recycled.
func checkClosureCapture(p *Pass, lit *ast.FuncLit, obj *types.Var) {
	if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
		return // declared inside the literal: not a capture
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Pkg.Info.Uses[id] == obj {
			p.Reportf(id.Pos(), "pooled %s captured by closure outlives its delivery; the box will be rewritten on reuse — copy the value out instead", obj.Name())
			return false
		}
		return true
	})
}

// consumesObj reports whether the statement consumes the pooled value:
// passes it as a call argument, returns it, or puts it back on a
// freelist.
func consumesObj(pkg *Package, s ast.Stmt, obj *types.Var, ps pools) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if identFor(pkg, arg, obj) {
					found = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if identFor(pkg, r, obj) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// containsReturn reports whether the statement contains a return outside
// any function literal.
func containsReturn(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
			return false
		}
		return !found
	})
	return found
}

// mentionsObj reports whether the node references the variable.
func mentionsObj(pkg *Package, n ast.Node, obj *types.Var) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && (pkg.Info.Uses[id] == obj || pkg.Info.Defs[id] == obj) {
			found = true
			return false
		}
		return !found
	})
	return found
}

// mentionsObjOutsideClosures is mentionsObj ignoring function-literal
// subtrees.
func mentionsObjOutsideClosures(pkg *Package, n ast.Node, obj *types.Var) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && (pkg.Info.Uses[id] == obj || pkg.Info.Defs[id] == obj) {
			found = true
			return false
		}
		return !found
	})
	return found
}

// identFor reports whether e is (after unparen) an identifier bound to
// the variable.
func identFor(pkg *Package, e ast.Expr, obj *types.Var) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && (pkg.Info.Uses[id] == obj || pkg.Info.Defs[id] == obj)
}

// appendCall matches append(...) with at least two arguments.
func appendCall(e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return nil, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil, false
	}
	return call, true
}

// listStep is one level of the enclosing-statement-list chain.
type listStep struct {
	list []ast.Stmt
	idx  int
}

// stmtPath returns the chain of statement lists from the function body
// down to (and including) the list directly containing target, with the
// index of the statement containing target at each level.
func stmtPath(body *ast.BlockStmt, target ast.Stmt) []listStep {
	var path []listStep
	var walk func(list []ast.Stmt) bool
	contains := func(s ast.Stmt) bool {
		return s.Pos() <= target.Pos() && target.End() <= s.End()
	}
	walk = func(list []ast.Stmt) bool {
		for i, s := range list {
			if !contains(s) {
				continue
			}
			path = append(path, listStep{list: list, idx: i})
			if s == target {
				return true
			}
			found := false
			ast.Inspect(s, func(n ast.Node) bool {
				if found {
					return false
				}
				var inner []ast.Stmt
				switch n := n.(type) {
				case *ast.BlockStmt:
					inner = n.List
				case *ast.CaseClause:
					inner = n.Body
				case *ast.CommClause:
					inner = n.Body
				case *ast.FuncLit:
					return false
				default:
					return true
				}
				for _, is := range inner {
					if is == target || contains(is) {
						found = walk(inner)
						return false
					}
				}
				return true
			})
			return found
		}
		return false
	}
	if !walk(body.List) {
		return nil
	}
	return path
}
