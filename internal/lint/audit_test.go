package lint_test

import (
	"strings"
	"testing"

	"gridmutex/internal/lint"
)

// TestExemptionAudit runs the full suite over a corpus package carrying
// one pragma of every audit category and checks each is classified
// correctly: live pragmas pass, stale ones, unknown analyzer names, and
// missing reasons are each reported.
func TestExemptionAudit(t *testing.T) {
	prog := loadProgram(t, "exemptaudit/internal/des")
	suite := lint.DefaultSuite()
	result := lint.RunSuite(prog, suite)

	// The typo'd pragma suppresses nothing, so the go statement under it
	// surfaces as the run's only diagnostic.
	if len(result.Diagnostics) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (the go statement under the typo'd pragma):\n%v", len(result.Diagnostics), result.Diagnostics)
	}
	if d := result.Diagnostics[0]; d.Analyzer != "desdeterminism" || !strings.Contains(d.Message, "go statement") {
		t.Errorf("unexpected surviving diagnostic: %s", d)
	}

	audit := lint.AuditExemptions(result.Exemptions, suite.Names())
	wantFragments := []string{
		"stale //lint:allow desdeterminism",            // Sum's leftover pragma
		"unknown analyzer determinism",                 // Typo's misspelling
		"stale //lint:allow determinism",               // ...which therefore also suppresses nothing
		"//lint:allow desdeterminism without a reason", // Quiet's bare pragma
	}
	if len(audit) != len(wantFragments) {
		t.Fatalf("got %d audit findings, want %d:\n%v", len(audit), len(wantFragments), audit)
	}
	for _, frag := range wantFragments {
		found := false
		for _, d := range audit {
			if strings.Contains(d.Message, frag) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no audit finding contains %q; got:\n%v", frag, audit)
		}
	}

	// The live, reasoned pragma must be accounted used — it is the one
	// hole the audit should never flag.
	liveSeen := false
	for _, e := range result.Exemptions {
		if e.Used && e.Reason != "" {
			liveSeen = true
		}
	}
	if !liveSeen {
		t.Error("no pragma recorded as used with a reason; Spawn's live pragma lost its accounting")
	}
}
