package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// VirtualTime flags arithmetic that mixes virtual-time expressions with
// raw wall-time duration literals outside the latency model.
//
// des.Time is (deliberately) an alias of time.Duration, so the type
// system cannot keep "an instant of simulated time" apart from "5
// milliseconds someone hardcoded". Inside the latency model
// (internal/topology, internal/simnet) literal durations are the point:
// they ARE the modeled network. Everywhere else, a literal added to or
// compared against a computed duration is a smell: timeouts, deadlines
// and intervals must come from configuration or from the topology, or
// the simulated system behaves differently from the deployed one the
// moment someone retunes a constant.
//
// The rule: a binary +, -, or ordered comparison where one operand is a
// time-unit literal (time.Second, 50*time.Millisecond, ...) and the
// other is a non-constant expression of duration type.
var VirtualTime = &Analyzer{
	Name: "virtualtime",
	Doc: "flag arithmetic mixing virtual-time values with raw " +
		"time.Duration literals outside the latency model",
	AppliesTo: anyUnder(
		"internal/des",
		"internal/algorithms",
		"internal/core",
		"internal/adaptive",
		"internal/workload",
		"internal/check",
		"internal/harness",
		"internal/reliable",
		// trace and stats consume virtual timestamps wholesale (event logs,
		// response-time aggregation) and fleet forwards per-job deadlines;
		// none of them is the latency model, so literal mixing is as wrong
		// there as in the algorithms.
		"internal/trace",
		"internal/stats",
		"internal/fleet",
	),
	Run: runVirtualTime,
}

func runVirtualTime(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ:
			default:
				return true
			}
			checkMix(p, be, be.X, be.Y)
			checkMix(p, be, be.Y, be.X)
			return true
		})
	}
}

// checkMix reports when lit is a duration-unit literal and other is a
// non-constant duration-typed expression.
func checkMix(p *Pass, be *ast.BinaryExpr, lit, other ast.Expr) {
	if !durationLiteral(p, lit) {
		return
	}
	tv, ok := p.Pkg.Info.Types[other]
	if !ok || tv.Value != nil {
		return // other side is constant too: pure config arithmetic
	}
	if !isDurationType(tv.Type) {
		return
	}
	p.Reportf(be.Pos(), "arithmetic mixes a raw duration literal (%s) with virtual time (%s); name the constant in the latency model or configuration so simulated and deployed behaviour stay coupled", types.ExprString(lit), types.ExprString(other))
}

// durationLiteral recognizes bare time-unit selectors (time.Second) and
// constant multiples of them (50 * time.Millisecond, time.Duration(50) *
// time.Millisecond).
func durationLiteral(p *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return durationLiteral(p, e.X)
	case *ast.SelectorExpr:
		if !isPkgIdent(p.Pkg.Info, e.X, "time") {
			return false
		}
		switch e.Sel.Name {
		case "Nanosecond", "Microsecond", "Millisecond", "Second", "Minute", "Hour":
			return true
		}
		return false
	case *ast.BinaryExpr:
		if e.Op != token.MUL {
			return false
		}
		// Constant * unit (either side), itself constant overall.
		if tv, ok := p.Pkg.Info.Types[e]; !ok || tv.Value == nil {
			return false
		}
		return durationLiteral(p, e.X) || durationLiteral(p, e.Y)
	}
	return false
}

func isDurationType(t types.Type) bool {
	if t == nil {
		return false
	}
	return namedType(t, "time", "Duration")
}
