package lint_test

import (
	"testing"

	"gridmutex/internal/lint"
	"gridmutex/internal/lint/linttest"
)

func TestDESDeterminismBad(t *testing.T) {
	linttest.Run(t, linttest.TestDataDir(t), lint.DESDeterminism, "desdeterminism/bad")
}

func TestDESDeterminismGood(t *testing.T) {
	linttest.Run(t, linttest.TestDataDir(t), lint.DESDeterminism, "desdeterminism/good")
}
