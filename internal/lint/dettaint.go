package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// DetTaint is the whole-program determinism-taint analyzer. The
// per-package desdeterminism pass has a structural blind spot: it checks
// the packages on its AppliesTo list file by file, so a DES package
// calling a helper in some *other* package that reads time.Now sails
// through — the call site is clean and the helper is out of scope.
//
// DetTaint closes the gap with the call graph: every function
// transitively reachable from a DES entry point (an exported function or
// method of des, simnet, core, algorithms, harness, explore, faults,
// recovery) is scanned for the same nondeterminism sources —
// wall-clock reads, the global math/rand generator, goroutine spawns,
// select statements, and map iteration that can leak order — wherever
// that function lives. Each finding carries the full call chain from the
// entry point, so the report explains *why* an apparently unrelated
// package is on the determinism hook.
//
// Scope discipline, to avoid double reporting:
//
//   - sources inside packages the per-package desdeterminism pass already
//     covers are NOT re-reported here; desdeterminism owns them;
//   - internal/livenet is a traversal island: it is the live transport,
//     deliberately built on goroutines and the wall clock, and is never
//     wired under the DES (conservative interface resolution would
//     otherwise drag every mutex.Env implementation into the DES slice).
//     Its own discipline is lockdiscipline's job.
var DetTaint = &ProgramAnalyzer{
	Name: "dettaint",
	Doc: "flag wall-clock, global math/rand, goroutine, select and map-order " +
		"nondeterminism in any function transitively reachable from DES entry " +
		"points, with the full call chain",
	Run: runDetTaint,
}

// desEntryPackages marks the packages whose exported API the DES drives;
// their exported functions and methods are the taint roots.
var desEntryPackages = anyUnder(
	"internal/des",
	"internal/simnet",
	"internal/core",
	"internal/algorithms",
	"internal/harness",
	"internal/explore",
	"internal/faults",
	"internal/recovery",
)

// taintIslands are packages the traversal never enters (see the analyzer
// doc).
var taintIslands = anyUnder(
	"internal/livenet",
)

func runDetTaint(p *ProgramPass) {
	g := BuildCallGraph(p.Prog)

	var roots []*CallNode
	for _, n := range g.Nodes {
		if desEntryPackages(n.Pkg.Path) && isExportedEntry(n) {
			roots = append(roots, n)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Name() < roots[j].Name() })

	parent := g.ReachableFrom(roots, func(n *CallNode) bool {
		return taintIslands(n.Pkg.Path)
	})

	// Deterministic report order: nodes sorted by declaration position.
	reachable := make([]*CallNode, 0, len(parent))
	for n := range parent {
		reachable = append(reachable, n)
	}
	sort.Slice(reachable, func(i, j int) bool {
		a := p.Prog.Fset.Position(reachable[i].Decl.Pos())
		b := p.Prog.Fset.Position(reachable[j].Decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})

	for _, n := range reachable {
		// desdeterminism already polices its own packages file-locally;
		// re-reporting the same lines under a second name would force
		// double pragmas.
		if DESDeterminism.AppliesTo(n.Pkg.Path) {
			continue
		}
		chain := g.Chain(parent, n)
		entry := chain[0].Func
		scanTaintSources(p, n, chain, entry)
	}
}

// isExportedEntry reports whether the node is part of its package's
// exported API: an exported package function, or an exported method on
// an exported named type. Unexported methods still become reachable
// through interface dispatch edges; they are just not roots themselves.
func isExportedEntry(n *CallNode) bool {
	if !n.Fn.Exported() {
		return false
	}
	recv := n.Fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return true
	}
	named, ok := derefNamed(recv.Type())
	return ok && named.Obj().Exported()
}

// scanTaintSources walks one reachable function's body (closures
// included: a closure's nondeterminism belongs to whoever wrote it) and
// reports every nondeterminism source with the reachability chain.
func scanTaintSources(p *ProgramPass, n *CallNode, chain []ChainEntry, entry string) {
	pkg := n.Pkg
	file := fileOf(pkg, n.Decl)
	ast.Inspect(n.Decl, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.GoStmt:
			p.Reportf(node.Pos(), chain, "go statement reachable from DES entry point %s: spawned goroutines make event interleaving scheduler-dependent", entry)
		case *ast.SelectStmt:
			p.Reportf(node.Pos(), chain, "select statement reachable from DES entry point %s: channel readiness order is scheduler-dependent", entry)
		case *ast.CallExpr:
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
				if isPkgIdent(pkg.Info, sel.X, "time") {
					if why, bad := forbiddenTimeFuncs[sel.Sel.Name]; bad {
						p.Reportf(node.Pos(), chain, "time.%s %s on a path reachable from DES entry point %s; thread the simulator's virtual clock through instead", sel.Sel.Name, why, entry)
					}
				}
				if isPkgIdent(pkg.Info, sel.X, "math/rand") || isPkgIdent(pkg.Info, sel.X, "math/rand/v2") {
					if !allowedRandFuncs[sel.Sel.Name] {
						p.Reportf(node.Pos(), chain, "math/rand.%s uses the global generator on a path reachable from DES entry point %s; draw from a seeded *rand.Rand instead", sel.Sel.Name, entry)
					}
				}
			}
		case *ast.RangeStmt:
			if file != nil && mapRangeLeaksOrder(pkg, node, file) {
				p.Reportf(node.Pos(), chain, "iteration over map %s can leak scheduler-chosen order into a path reachable from DES entry point %s; sort the keys first or make the body order-independent", exprString(node.X), entry)
			}
		}
		return true
	})
}

// fileOf returns the *ast.File containing the declaration.
func fileOf(pkg *Package, decl *ast.FuncDecl) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= decl.Pos() && decl.Pos() <= f.FileEnd {
			return f
		}
	}
	return nil
}
