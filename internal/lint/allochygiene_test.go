package lint_test

import (
	"testing"

	"gridmutex/internal/lint"
	"gridmutex/internal/lint/linttest"
)

func TestAllocHygieneHotPath(t *testing.T) {
	linttest.RunProgram(t, linttest.TestDataDir(t), lint.AllocHygiene,
		"allochygiene/internal/simnet",
	)
}
