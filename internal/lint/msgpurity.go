package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// MsgPurity checks that message structs — the types exchanged through
// the simulated network — are self-contained values: no pointer,
// slice-of-pointer, map, chan or func fields, directly or through
// embedded structs, arrays and slices.
//
// The simulator delivers messages by reference-free value semantics in
// spirit only: a pointer smuggled inside a message aliases sender state
// across simulated nodes, so a mutation on one "machine" is visible on
// another without a message — exactly the kind of impossible causality
// the simulation-vs-testbed comparison would silently absorb. Slices of
// scalars are tolerated (the algorithms copy them on send and receive,
// e.g. the Suzuki-Kasami token), as are interface fields, which the
// wrapper messages (core.Envelope, adaptive.Inner, reliable.Packet) need
// to nest payloads.
//
// A message struct is recognized structurally: any named struct type
// whose method set (value or pointer) contains both Kind() string and
// Size() int — the mutex.Message contract.
var MsgPurity = &Analyzer{
	Name: "msgpurity",
	Doc: "message structs exchanged through the network must not carry " +
		"pointer, slice-of-pointer, map, chan or func fields",
	AppliesTo: anyUnder(
		"internal/mutex",
		"internal/algorithms",
		"internal/core",
		"internal/adaptive",
		"internal/reliable",
		"internal/simnet",
		"internal/livenet",
		"internal/recovery",
		// workload and trace sit beside the message plane (request
		// generators, event records); they define no messages today, but
		// being on the list means a Message impl added there tomorrow is
		// checked from its first commit rather than silently skipped.
		"internal/workload",
		"internal/trace",
		// scenario defines no messages either; listed for the same
		// first-commit coverage reason.
		"internal/scenario",
	),
	Run: runMsgPurity,
}

func runMsgPurity(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj := p.Pkg.Info.Defs[ts.Name]
				if obj == nil || !isMessageType(obj.Type()) {
					continue
				}
				checkMessageStruct(p, ts.Name.Name, st)
			}
		}
	}
}

// isMessageType reports whether T's pointer method set carries
// Kind() string and Size() int.
func isMessageType(t types.Type) bool {
	ms := types.NewMethodSet(types.NewPointer(t))
	return hasMethodSig(ms, "Kind", "string") && hasMethodSig(ms, "Size", "int")
}

func hasMethodSig(ms *types.MethodSet, name, result string) bool {
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok || fn.Name() != name {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
			sig.Results().At(0).Type().String() == result {
			return true
		}
	}
	return false
}

func checkMessageStruct(p *Pass, name string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		t := p.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if why := impureType(t, make(map[types.Type]bool)); why != "" {
			fname := "(embedded)"
			if len(field.Names) > 0 {
				fname = field.Names[0].Name
			}
			p.Reportf(field.Pos(), "message %s field %s %s: messages must be self-contained values — aliasing across simulated nodes breaks node isolation", name, fname, why)
		}
	}
}

// impureType explains why t can alias mutable state across nodes, or
// returns "" when it cannot. Interfaces are accepted (nested message
// payloads); named struct fields are checked recursively.
func impureType(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return fmt.Sprintf("is a pointer (%s)", t)
	case *types.Map:
		return fmt.Sprintf("is a map (%s)", t)
	case *types.Chan:
		return fmt.Sprintf("is a channel (%s)", t)
	case *types.Signature:
		return fmt.Sprintf("is a func (%s)", t)
	case *types.Slice:
		if why := impureType(u.Elem(), seen); why != "" {
			return "has an element that " + why
		}
	case *types.Array:
		if why := impureType(u.Elem(), seen); why != "" {
			return "has an element that " + why
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if why := impureType(u.Field(i).Type(), seen); why != "" {
				return fmt.Sprintf("has field %s that %s", u.Field(i).Name(), why)
			}
		}
	}
	return ""
}
