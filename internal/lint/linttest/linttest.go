// Package linttest runs lint analyzers over a corpus of example
// packages and checks their diagnostics against expectations embedded in
// the sources, in the style of golang.org/x/tools/go/analysis/analysistest.
//
// An expectation is a trailing comment of the form
//
//	for k := range m {} // want `iteration over map`
//
// Every `...`-quoted (or "..."-quoted) fragment on a line is a regular
// expression that must match one diagnostic reported on that line; every
// diagnostic must be matched by exactly one fragment. Files without want
// comments assert the analyzer stays silent.
package linttest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"gridmutex/internal/lint"
)

// TestDataDir returns the testdata/src root next to the caller's package.
func TestDataDir(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		t.Fatal("linttest: cannot locate caller")
	}
	return filepath.Join(filepath.Dir(file), "testdata", "src")
}

// Run loads testdata/src/<pkgdir> as a package and checks the analyzer's
// diagnostics against the want comments in its sources.
func Run(t *testing.T, srcRoot string, a *lint.Analyzer, pkgdir string) {
	t.Helper()
	loader, err := lint.NewLoader(srcRoot)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	loader.ExtraRoot = srcRoot
	pkg, err := loader.LoadDir(filepath.Join(srcRoot, filepath.FromSlash(pkgdir)), pkgdir)
	if err != nil {
		t.Fatalf("linttest: load %s: %v", pkgdir, err)
	}
	for _, e := range pkg.TypeErrors {
		t.Errorf("linttest: %s: type error: %v", pkgdir, e)
	}

	// Run without the package filter: the corpus decides scope.
	unfiltered := &lint.Analyzer{Name: a.Name, Doc: a.Doc, Run: a.Run}
	got := lint.RunAnalyzers(pkg, []*lint.Analyzer{unfiltered})

	wants := collectWants(t, pkg.Fset, pkg)
	matched := make([]bool, len(wants))
	for _, d := range got {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", pkgdir, d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s: %s:%d: no diagnostic matched want %q", pkgdir, w.file, w.line, w.re)
		}
	}
}

// RunProgram loads the given testdata/src/<pkgdir> packages together as
// one program, runs the whole-program analyzer over it, and checks its
// diagnostics against the want comments across all the sources.
//
// Corpus packages select themselves into the analyzer's scope by path
// shape: a package under testdata/src/<name>/internal/harness loads with
// import path <name>/internal/harness, which the analyzers' package
// filters match at the internal/ boundary exactly like the real module
// path.
func RunProgram(t *testing.T, srcRoot string, a *lint.ProgramAnalyzer, pkgdirs ...string) {
	t.Helper()
	loader, err := lint.NewLoader(srcRoot)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	loader.ExtraRoot = srcRoot
	prog, err := loader.LoadProgram(pkgdirs)
	if err != nil {
		t.Fatalf("linttest: load program: %v", err)
	}
	var wants []want
	for _, pkg := range prog.Packages {
		for _, e := range pkg.TypeErrors {
			t.Errorf("linttest: %s: type error: %v", pkg.Path, e)
		}
		wants = append(wants, collectWants(t, pkg.Fset, pkg)...)
	}

	got := lint.RunProgramAnalyzers(prog, []*lint.ProgramAnalyzer{a})
	matched := make([]bool, len(wants))
	for _, d := range got {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s: %s:%d: no diagnostic matched want %q", a.Name, w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile("// want (.*)$")
var fragRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

func collectWants(t *testing.T, fset *token.FileSet, pkg *lint.Package) []want {
	t.Helper()
	var out []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				frags := fragRe.FindAllStringSubmatch(m[1], -1)
				if len(frags) == 0 {
					t.Fatalf("linttest: %s:%d: want comment without quoted pattern", pos.Filename, pos.Line)
				}
				for _, fr := range frags {
					pat := fr[1]
					if pat == "" {
						pat = fr[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("linttest: %s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, want{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// Describe renders diagnostics for debugging test failures.
func Describe(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
