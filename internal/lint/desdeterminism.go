package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DESDeterminism forbids sources of nondeterminism inside DES-driven
// packages: wall-clock reads, the global math/rand generator, goroutines,
// select statements, and iteration over maps whose order can reach state
// or messages.
//
// Map ranges are allowed when the loop body is provably order-independent
// (pure counting/accumulation with commutative operators, early constant
// returns, key deletion) or when the collected keys are sorted before
// use (the append-keys-then-sort.Slice idiom). Anything else needs a
// //lint:allow desdeterminism comment with a reason.
var DESDeterminism = &Analyzer{
	Name: "desdeterminism",
	Doc: "forbid wall-clock time, global math/rand, goroutines, select, and " +
		"order-dependent map iteration in DES-driven packages",
	// internal/fleet is the one goroutine island in the simulation stack —
	// the worker pool the harness fans repetitions out on. Its jobs are
	// pure functions of their seeds, each on a private Simulator, and its
	// results are merged by job index, so scheduler nondeterminism cannot
	// reach any aggregate (DESIGN.md §8). It is still on this list: the
	// island is one specific `go` statement, excused in place with a
	// reasoned //lint:allow, not a package-wide blind spot.
	AppliesTo: anyUnder(
		"internal/des",
		"internal/simnet",
		"internal/algorithms",
		"internal/core",
		"internal/adaptive",
		"internal/workload",
		"internal/check",
		"internal/trace",
		"internal/stats",
		"internal/harness",
		"internal/reliable",
		"internal/explore",
		"internal/recovery",
		"internal/faults",
		// fleet joined the list when gridlint grew whole-program taint:
		// its goroutine pool is a deliberate, documented exception, so the
		// `go` statement it needs carries a //lint:allow pragma with the
		// DESIGN.md §8 justification instead of a blanket package opt-out.
		"internal/fleet",
		// scenario compiles declarative fixtures onto the simulation stack
		// and promises byte-identical verdicts per seed, so it obeys the
		// same determinism rules as the packages it drives.
		"internal/scenario",
	),
	Run: runDESDeterminism,
}

// forbiddenTimeFuncs are the package-level time functions that read or
// depend on the wall clock. Pure constructors and formatters (Duration,
// ParseDuration, Unix...) stay legal.
var forbiddenTimeFuncs = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "blocks on the wall clock",
	"After":     "schedules on the wall clock",
	"Tick":      "schedules on the wall clock",
	"NewTicker": "schedules on the wall clock",
	"NewTimer":  "schedules on the wall clock",
	"AfterFunc": "schedules on the wall clock",
}

// allowedRandFuncs construct seeded generators; everything else on the
// math/rand package operates the process-global, unseeded source.
var allowedRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDESDeterminism(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Pos(), "go statement in a DES-driven package: handlers must stay single-threaded to keep event interleaving reproducible")
			case *ast.SelectStmt:
				p.Reportf(n.Pos(), "select statement in a DES-driven package: channel readiness order is scheduler-dependent")
			case *ast.CallExpr:
				checkDESCall(p, n)
			case *ast.RangeStmt:
				checkMapRange(p, n, f)
				return true
			}
			return true
		})
	}
}

func checkDESCall(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if isPkgIdent(p.Pkg.Info, sel.X, "time") {
		if why, bad := forbiddenTimeFuncs[sel.Sel.Name]; bad {
			p.Reportf(call.Pos(), "time.%s %s; use the simulator's virtual clock", sel.Sel.Name, why)
		}
		return
	}
	if isPkgIdent(p.Pkg.Info, sel.X, "math/rand") || isPkgIdent(p.Pkg.Info, sel.X, "math/rand/v2") {
		if !allowedRandFuncs[sel.Sel.Name] {
			p.Reportf(call.Pos(), "math/rand.%s uses the global generator; draw from a seeded *rand.Rand instead", sel.Sel.Name)
		}
	}
}

// checkMapRange flags `range m` over a map unless the iteration provably
// cannot leak order.
func checkMapRange(p *Pass, rng *ast.RangeStmt, file *ast.File) {
	if mapRangeLeaksOrder(p.Pkg, rng, file) {
		p.Reportf(rng.Pos(), "iteration over map %s has scheduler-chosen order that can reach state or messages; sort the keys first, make the body order-independent, or annotate //lint:allow desdeterminism with a reason", types.ExprString(rng.X))
	}
}

// mapRangeLeaksOrder reports whether rng iterates a map in a way that can
// leak iteration order: not provably order-independent and not the
// collect-keys-then-sort idiom. Shared with the whole-program taint pass,
// which applies the same judgment to packages outside the per-file set.
func mapRangeLeaksOrder(pkg *Package, rng *ast.RangeStmt, file *ast.File) bool {
	t := pkg.Info.TypeOf(rng.X)
	if t == nil {
		return false
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return false
	}
	if orderIndependentBlock(pkg, rng.Body) {
		return false
	}
	return !collectThenSort(pkg, rng, file)
}

// orderIndependentBlock reports whether executing the statements in any
// order yields the same result. The whitelist is deliberately small:
//
//   - v++ / v-- on an identifier
//   - compound assignments with commutative operators (+= *= |= &= ^=)
//     whose right-hand side makes no function calls
//   - delete(m, k)
//   - return of constants only
//   - continue
//   - if statements whose condition makes no calls (len/cap excepted)
//     and whose branches are themselves order-independent
//   - nested blocks of the above
func orderIndependentBlock(p *Package, b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if !orderIndependentStmt(p, s) {
			return false
		}
	}
	return true
}

func orderIndependentStmt(p *Package, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		_, ok := s.X.(*ast.Ident)
		return ok
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ADD_ASSIGN, token.MUL_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			return len(s.Rhs) == 1 && callFree(s.Rhs[0])
		}
		return false
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				return true
			}
		}
		return false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if !constantExpr(p, r) {
				return false
			}
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.IfStmt:
		if s.Init != nil || !callFree(s.Cond) {
			return false
		}
		if !orderIndependentBlock(p, s.Body) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return orderIndependentBlock(p, e)
		case *ast.IfStmt:
			return orderIndependentStmt(p, e)
		}
		return false
	case *ast.BlockStmt:
		return orderIndependentBlock(p, s)
	}
	return false
}

// callFree reports whether e contains no function calls except len and
// cap, whose results cannot observe iteration order.
func callFree(e ast.Expr) bool {
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		if call, isCall := n.(*ast.CallExpr); isCall {
			if id, isIdent := call.Fun.(*ast.Ident); isIdent && (id.Name == "len" || id.Name == "cap") {
				return true
			}
			ok = false
			return false
		}
		return true
	})
	return ok
}

// constantExpr reports whether e evaluates to a compile-time constant.
func constantExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

// collectThenSort recognizes the sorted-keys idiom: the loop body only
// appends the range key (or value) to one slice, and a later statement in
// the same enclosing block sorts that slice before anything else touches
// it.
//
//	out := make([]uint64, 0, len(m))
//	for k := range m {
//	    out = append(out, k)
//	}
//	sort.Slice(out, ...)
func collectThenSort(p *Package, rng *ast.RangeStmt, file *ast.File) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	target, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}

	// Find the statement list containing the range and scan forward: the
	// first use of target must be a sort call.
	block := enclosingBlock(file, rng)
	if block == nil {
		return false
	}
	idx := -1
	for i, s := range block {
		if s == ast.Stmt(rng) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	for _, s := range block[idx+1:] {
		if isSortOf(p, s, target.Name) {
			return true
		}
		if usesIdent(s, target.Name) {
			return false
		}
	}
	return false
}

// enclosingBlock returns the statement list directly containing stmt.
func enclosingBlock(file *ast.File, stmt ast.Stmt) []ast.Stmt {
	var found []ast.Stmt
	ast.Inspect(file, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for _, s := range list {
			if s == stmt {
				found = list
				return false
			}
		}
		return true
	})
	return found
}

// isSortOf reports whether s calls a sorting function with the named
// identifier as its first argument: sort.Slice, sort.Sort, sort.Strings,
// sort.Ints, slices.Sort, slices.SortFunc.
func isSortOf(p *Package, s ast.Stmt, name string) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if !isPkgIdent(p.Info, sel.X, "sort") && !isPkgIdent(p.Info, sel.X, "slices") {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && arg.Name == name
}

// usesIdent reports whether the statement mentions the identifier.
func usesIdent(s ast.Stmt, name string) bool {
	used := false
	ast.Inspect(s, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			used = true
			return false
		}
		return true
	})
	return used
}
