package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocHygiene guards the zero-allocation claim of the simulator hot
// path (BENCH_5: steady-state send/deliver allocates nothing). The
// benchmark proves the property for the configurations it runs;
// this analyzer keeps the *code* honest in between benchmark runs by
// flagging constructs that heap-allocate on every execution, on any
// function reachable from the hot-path roots:
//
//   - function literals (closure environments escape);
//   - fmt.* calls (variadic ...any boxes every argument);
//   - string concatenation with a non-constant operand;
//   - make(map) / make(chan) / new(T);
//   - interface boxing of struct-typed values at call argument
//     positions (the Message-in-Envelope trap PR 5 eliminated).
//
// Roots are the named hot-path functions of des, simnet and core —
// Send/send, Deliver/AtDeliver, Step, push/pop, run, note — and
// reachability is confined to those three packages: a call that leaves
// the hot core (into stats, trace, check) is by construction on a slow
// or setup path.
//
// panic(...) argument subtrees are skipped: a panic is the end of the
// run, not a steady-state event, and its message formatting is welcome
// to allocate.
//
// Deliberate allocations on cold sub-paths (freelist growth, the boxing
// fallback for non-pooled capabilities, lazily built diagnostic maps)
// carry //lint:allow allochygiene pragmas with reasons — the analyzer
// is a tripwire, and the pragma inventory is the audited list of every
// hole in the zero-alloc story.
var AllocHygiene = &ProgramAnalyzer{
	Name: "allochygiene",
	Doc: "flag per-event heap allocation (closures, fmt, string concat, " +
		"make/new, interface boxing) on functions reachable from the " +
		"simulator hot path",
	Run: runAllocHygiene,
}

// hotPackages confine both root selection and traversal.
var hotPackages = anyUnder(
	"internal/des",
	"internal/simnet",
	"internal/core",
)

// hotRootNames are the hot-path functions by name. Send/Deliver are the
// public event surface; AtDeliver is the typed delivery hook; Step,
// push, pop drive the event heap; run executes one event; note feeds
// the per-kind counters on every send.
var hotRootNames = map[string]bool{
	"Send":      true,
	"send":      true,
	"Deliver":   true,
	"AtDeliver": true,
	"Step":      true,
	"push":      true,
	"pop":       true,
	"run":       true,
	"note":      true,
}

func runAllocHygiene(p *ProgramPass) {
	g := BuildCallGraph(p.Prog)

	var roots []*CallNode
	for _, n := range g.Nodes {
		if hotPackages(n.Pkg.Path) && hotRootNames[n.Fn.Name()] {
			roots = append(roots, n)
		}
	}

	parent := g.ReachableFrom(roots, func(n *CallNode) bool {
		return !hotPackages(n.Pkg.Path)
	})

	// Walk reachable functions in deterministic (package, position) order.
	for _, pkg := range p.Prog.Packages {
		if !hotPackages(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := g.Nodes[obj]
				if node == nil {
					continue
				}
				if _, reachable := parent[node]; !reachable {
					continue
				}
				chain := g.Chain(parent, node)
				scanAllocs(p, pkg, fd, chain)
			}
		}
	}
}

// scanAllocs reports allocating constructs in one hot function body.
func scanAllocs(p *ProgramPass, pkg *Package, fd *ast.FuncDecl, chain []ChainEntry) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(n) {
				// Panic formatting is cold by definition; skip the whole
				// argument subtree.
				return false
			}
			checkAllocCall(p, pkg, n, chain)
		case *ast.FuncLit:
			p.Reportf(n.Pos(), chain, "function literal on the hot path allocates its closure environment per event; hoist it to a method or package function")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringConcat(pkg, n) {
				p.Reportf(n.Pos(), chain, "string concatenation on the hot path allocates per event; precompute the string or use fixed identifiers")
			}
		}
		return true
	})
}

// isPanicCall matches panic(...).
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// checkAllocCall flags fmt calls, make(map/chan), new, and interface
// boxing at argument positions.
func checkAllocCall(p *ProgramPass, pkg *Package, call *ast.CallExpr, chain []ChainEntry) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			if len(call.Args) > 0 {
				switch pkg.Info.TypeOf(call.Args[0]).Underlying().(type) {
				case *types.Map:
					p.Reportf(call.Pos(), chain, "make(map) on the hot path allocates per event; preallocate the map at construction time")
				case *types.Chan:
					p.Reportf(call.Pos(), chain, "make(chan) on the hot path allocates per event — and channels have no place under the DES at all")
				}
			}
			return
		case "new":
			p.Reportf(call.Pos(), chain, "new(%s) on the hot path allocates per event; draw from a freelist or reuse a field", exprString(call.Args[0]))
			return
		}
	case *ast.SelectorExpr:
		if isPkgIdent(pkg.Info, fun.X, "fmt") {
			p.Reportf(call.Pos(), chain, "fmt.%s on the hot path boxes every argument into ...any; move formatting off the per-event path", fun.Sel.Name)
			return
		}
	}
	checkBoxingArgs(p, pkg, call, chain)
}

// checkBoxingArgs flags struct-typed values passed to interface-typed
// parameters: the conversion heap-allocates the struct copy per call.
// Pointer, basic and already-interface arguments are free.
func checkBoxingArgs(p *ProgramPass, pkg *Package, call *ast.CallExpr, chain []ChainEntry) {
	sig, ok := pkg.Info.TypeOf(call.Fun).(*types.Signature)
	if ok && sig.Variadic() {
		// Variadic calls allocate the backing slice too, but the repo's
		// hot path has none except append (no signature) — keep the rule
		// focused on fixed-arity boxing.
		return
	}
	for i, arg := range call.Args {
		var paramT types.Type
		if ok && i < sig.Params().Len() {
			paramT = sig.Params().At(i).Type()
		}
		if paramT == nil {
			continue
		}
		if _, isIface := paramT.Underlying().(*types.Interface); !isIface {
			continue
		}
		argT := pkg.Info.TypeOf(arg)
		if argT == nil {
			continue
		}
		if _, already := argT.Underlying().(*types.Interface); already {
			continue
		}
		if _, isStruct := argT.Underlying().(*types.Struct); isStruct {
			p.Reportf(arg.Pos(), chain, "struct value %s boxed into interface parameter on the hot path allocates a copy per event; pass a pointer or use the typed delivery hook", exprString(arg))
		}
	}
}

// isStringConcat reports whether the + expression produces a string and
// has at least one non-constant operand (constant folding is free).
func isStringConcat(pkg *Package, e *ast.BinaryExpr) bool {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok || basic.Kind() != types.String && basic.Kind() != types.UntypedString {
		return false
	}
	if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil {
		return false
	}
	return true
}
