package lint_test

import (
	"testing"

	"gridmutex/internal/lint"
	"gridmutex/internal/lint/linttest"
)

func TestFreelistBad(t *testing.T) {
	linttest.Run(t, linttest.TestDataDir(t), lint.FreelistDiscipline, "freelist/bad")
}

func TestFreelistGood(t *testing.T) {
	linttest.Run(t, linttest.TestDataDir(t), lint.FreelistDiscipline, "freelist/good")
}
