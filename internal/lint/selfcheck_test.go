package lint_test

import (
	"strings"
	"testing"

	"gridmutex/internal/lint"
	"gridmutex/internal/lint/linttest"
)

// TestGridlintSelfCheck runs the complete suite — per-package analyzers,
// whole-program taint and allocation hygiene, and the exemption audit —
// over the repo itself, exactly as CI invokes gridlint. The tree must be
// clean: every invariant violation is either fixed or carries a
// reasoned, still-live //lint:allow pragma.
func TestGridlintSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	all, err := loader.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range all {
		if strings.HasPrefix(p, loader.ModulePath+"/internal/") || strings.HasPrefix(p, loader.ModulePath+"/cmd/") {
			paths = append(paths, p)
		}
	}
	if len(paths) == 0 {
		t.Fatal("no module packages found")
	}
	prog, err := loader.LoadProgram(paths)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range prog.Packages {
		for _, e := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, e)
		}
	}

	suite := lint.DefaultSuite()
	result := lint.RunSuite(prog, suite)
	if len(result.Diagnostics) != 0 {
		t.Errorf("gridlint is not clean over the repo:\n%s", linttest.Describe(result.Diagnostics))
	}
	if audit := lint.AuditExemptions(result.Exemptions, suite.Names()); len(audit) != 0 {
		t.Errorf("exemption audit is not clean over the repo:\n%s", linttest.Describe(audit))
	}
}
