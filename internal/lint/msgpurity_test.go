package lint_test

import (
	"testing"

	"gridmutex/internal/lint"
	"gridmutex/internal/lint/linttest"
)

func TestMsgPurityBad(t *testing.T) {
	linttest.Run(t, linttest.TestDataDir(t), lint.MsgPurity, "msgpurity/bad")
}

func TestMsgPurityGood(t *testing.T) {
	linttest.Run(t, linttest.TestDataDir(t), lint.MsgPurity, "msgpurity/good")
}
