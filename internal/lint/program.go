package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Program is a set of packages loaded and type-checked together under one
// Loader, the unit whole-program analyzers (DetTaint, AllocHygiene)
// operate on. Cross-package analyses see exactly the packages in the
// Program: pointing the driver at a subset of the module narrows their
// view, which is why ci.sh loads ./internal/... and ./cmd/... together.
type Program struct {
	// Fset is the FileSet shared by every package in the program.
	Fset *token.FileSet
	// Packages, sorted by import path.
	Packages []*Package

	byPath map[string]*Package
}

// LoadProgram loads every listed import path into one Program. A package
// that fails to load aborts the whole program: a whole-program analysis
// over a partial program would silently under-report.
func (l *Loader) LoadProgram(paths []string) (*Program, error) {
	prog := &Program{Fset: l.Fset(), byPath: make(map[string]*Package, len(paths))}
	for _, path := range paths {
		if prog.byPath[path] != nil {
			continue
		}
		pkg, err := l.Load(path)
		if err != nil {
			return nil, fmt.Errorf("lint: load program: %w", err)
		}
		prog.byPath[path] = pkg
		prog.Packages = append(prog.Packages, pkg)
	}
	sort.Slice(prog.Packages, func(i, j int) bool {
		return prog.Packages[i].Path < prog.Packages[j].Path
	})
	return prog, nil
}

// Package returns the loaded package with the given import path, or nil.
func (p *Program) Package(path string) *Package {
	return p.byPath[path]
}

// ProgramAnalyzer is one named whole-program pass. Unlike Analyzer there
// is no AppliesTo filter: a whole-program pass decides internally which
// functions matter (entry points, hot roots), and its diagnostics may
// land in any package of the Program.
type ProgramAnalyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces
	// and why.
	Doc string
	// Run inspects the program and reports findings through the pass.
	Run func(*ProgramPass)
}

// ProgramPass carries one program analyzer's view of one Program.
type ProgramPass struct {
	Analyzer *ProgramAnalyzer
	Prog     *Program

	diags []Diagnostic
}

// Reportf records a diagnostic at pos with an optional call chain
// explaining how the flagged code is reached from an entry point.
func (p *ProgramPass) Reportf(pos token.Pos, chain []ChainEntry, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// RunProgramAnalyzers executes the whole-program analyzers and returns
// their raw (unsuppressed) diagnostics sorted by position. Suppression
// and exemption accounting happen in RunSuite, which knows every
// package's //lint:allow pragmas.
func RunProgramAnalyzers(prog *Program, analyzers []*ProgramAnalyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &ProgramPass{Analyzer: a, Prog: prog}
		a.Run(pass)
		out = append(out, pass.diags...)
	}
	sortDiagnostics(out)
	return out
}
