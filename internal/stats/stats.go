// Package stats provides the summary statistics the paper's evaluation
// reports: mean, standard deviation (figure 5(a)) and relative standard
// deviation σ/mean (figure 5(b)), plus percentiles for richer analysis.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator aggregates samples with Welford's online algorithm, so
// million-sample runs need no buffering. By default individual samples
// are discarded (compact mode). Two percentile backends are available:
// Sketch (the default choice of the experiment harness) feeds a
// bounded-memory t-digest, and Retain keeps every raw sample for exact
// order statistics — only accumulators that actually serve percentiles
// should pay either cost. When both are set, Percentile answers from the
// exact retained samples.
type Accumulator struct {
	// Retain keeps every pushed sample so Percentile is exact. The zero
	// value is compact: constant memory, no percentiles.
	Retain bool
	// Sketch feeds every pushed sample into a mergeable t-digest
	// (DefaultCompression), bounding memory at O(compression) while
	// keeping P50/P95/P99 within a fraction of a percent on smooth
	// distributions. Set it, like Retain, before the first Push.
	Sketch bool

	n        int64
	mean, m2 float64
	min, max float64
	// samples holds the retained values. Percentile sorts this slice in
	// place (ordering is irrelevant to the moment statistics), so there
	// is exactly one copy of the data; sorted tracks whether the last
	// Push or Merge invalidated that order.
	samples []float64
	sorted  bool
	digest  *TDigest
}

// Push adds one sample.
func (a *Accumulator) Push(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
	if a.Retain {
		a.samples = append(a.samples, x)
		a.sorted = false
	}
	if a.Sketch {
		if a.digest == nil {
			a.digest = NewTDigest(DefaultCompression)
		}
		a.digest.Add(x)
	}
}

// N returns the sample count.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the sample mean, or 0 with no samples.
func (a *Accumulator) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance.
func (a *Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation σ.
func (a *Accumulator) Std() float64 { return math.Sqrt(a.Var()) }

// RelStd returns σ/mean, the relative deviation of figure 5(b); it is 0
// when the mean is 0.
func (a *Accumulator) RelStd() float64 {
	if a.mean == 0 {
		return 0
	}
	return a.Std() / a.mean
}

// Min returns the smallest sample, or 0 with no samples.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample, or 0 with no samples.
func (a *Accumulator) Max() float64 { return a.max }

// Percentile returns the p-quantile (0 <= p <= 1); it panics if neither
// percentile backend was enabled or p is out of range. With Retain the
// answer is exact — the first query after new data sorts the retained
// samples in place, further queries reuse that order. Otherwise the
// t-digest sketch answers by interpolation.
func (a *Accumulator) Percentile(p float64) float64 {
	if !a.Retain && !a.Sketch {
		panic("stats: percentiles unavailable without Retain or Sketch")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,1]", p))
	}
	if a.n == 0 {
		return 0
	}
	if !a.Retain {
		return a.digest.Quantile(p)
	}
	if !a.sorted {
		sort.Float64s(a.samples)
		a.sorted = true
	}
	s := a.samples
	if len(s) == 1 {
		return s[0]
	}
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary is a plain-value snapshot of an accumulator.
type Summary struct {
	N                   int64
	Mean, Std, RelStd   float64
	Min, Max            float64
	P50, P95, P99       float64
	PercentilesComputed bool
}

// Summarize snapshots the accumulator. With a percentile backend enabled
// (Retain sorts the samples at most once — see Percentile; Sketch queries
// the digest) it fills in P50/P95/P99.
func (a *Accumulator) Summarize() Summary {
	s := Summary{
		N: a.n, Mean: a.Mean(), Std: a.Std(), RelStd: a.RelStd(),
		Min: a.min, Max: a.max,
	}
	if (a.Retain || a.Sketch) && a.n > 0 {
		s.P50 = a.Percentile(0.50)
		s.P95 = a.Percentile(0.95)
		s.P99 = a.Percentile(0.99)
		s.PercentilesComputed = true
	}
	return s
}

// Merge folds other into a (Chan et al. parallel variance update). Each
// percentile backend survives only when both sides carry it: merging a
// compact accumulator into a retaining (or sketching) one drops that
// backend, since the combined sample set would be incomplete.
func (a *Accumulator) Merge(other *Accumulator) {
	if other.n == 0 {
		return
	}
	if a.n == 0 {
		retain := a.Retain && other.Retain
		sketch := a.Sketch && other.Sketch
		*a = *other
		a.Retain = retain
		if retain {
			a.samples = append([]float64(nil), other.samples...)
			a.sorted = false
		} else {
			a.samples = nil
		}
		a.Sketch = sketch
		if sketch {
			a.digest = other.digest.Clone()
		} else {
			a.digest = nil
		}
		return
	}
	na, nb := float64(a.n), float64(other.n)
	delta := other.mean - a.mean
	total := na + nb
	a.mean += delta * nb / total
	a.m2 += other.m2 + delta*delta*na*nb/total
	a.n += other.n
	if other.min < a.min {
		a.min = other.min
	}
	if other.max > a.max {
		a.max = other.max
	}
	if a.Retain && other.Retain {
		a.samples = append(a.samples, other.samples...)
		a.sorted = false
	} else {
		a.Retain = false
		a.samples = nil
	}
	if a.Sketch && other.Sketch {
		a.digest.Merge(other.digest)
	} else {
		a.Sketch = false
		a.digest = nil
	}
}

// JainIndex computes Jain's fairness index of the samples:
// (Σx)² / (n·Σx²). It is 1 when all samples are equal and approaches 1/n
// as one sample dominates; by convention the empty set is perfectly fair.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// tCritical95 holds two-sided 95% Student-t critical values by degrees of
// freedom (1..30); beyond 30 the normal approximation 1.96 is used.
var tCritical95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95Half returns the half-width of the two-sided 95% confidence interval
// of the mean of xs (Student-t); it is 0 with fewer than two samples. The
// variance is a direct Welford recurrence over the slice — no Accumulator
// is constructed.
func CI95Half(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	var mean, m2 float64
	for i, x := range xs {
		delta := x - mean
		mean += delta / float64(i+1)
		m2 += delta * (x - mean)
	}
	std := math.Sqrt(m2 / float64(n-1))
	dof := n - 1
	t := 1.96
	if dof-1 < len(tCritical95) {
		t = tCritical95[dof-1]
	}
	return t * std / math.Sqrt(float64(n))
}
