package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the same linear-interpolation order statistic the
// Retain backend computes.
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// relErr is |got-want| / max(|want|, 1e-12).
func relErr(got, want float64) float64 {
	d := math.Abs(want)
	if d < 1e-12 {
		d = 1e-12
	}
	return math.Abs(got-want) / d
}

// TestTDigestAccuracyAdversarial checks the sketch against exact order
// statistics on distributions chosen to stress it: heavy tails, extreme
// skew, discrete clumps, pre-sorted input (worst case for naive
// streaming summaries) and a bimodal gap.
func TestTDigestAccuracyAdversarial(t *testing.T) {
	const n = 50_000
	rng := rand.New(rand.NewSource(99))
	dists := map[string]func() []float64{
		"uniform": func() []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.Float64() * 100
			}
			return xs
		},
		"exponential": func() []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.ExpFloat64() * 10
			}
			return xs
		},
		"lognormal": func() []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = math.Exp(rng.NormFloat64()*1.5 + 2)
			}
			return xs
		},
		"sorted-ascending": func() []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(i)
			}
			return xs
		},
		"bimodal-gap": func() []float64 {
			xs := make([]float64, n)
			for i := range xs {
				if i%2 == 0 {
					xs[i] = 1 + rng.Float64()
				} else {
					xs[i] = 1000 + rng.Float64()
				}
			}
			return xs
		},
		"clumped": func() []float64 {
			// Few distinct values: quantiles must land on (or between) them.
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(rng.Intn(5)) * 7
			}
			return xs
		},
	}
	for name, gen := range dists {
		xs := gen()
		d := NewTDigest(DefaultCompression)
		for _, x := range xs {
			d.Add(x)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, q := range []float64{0.50, 0.95, 0.99} {
			got, want := d.Quantile(q), exactQuantile(sorted, q)
			// The acceptance bar is 1% relative error at P50/P95/P99. The
			// bimodal gap is the exception that proves the definition:
			// any quantile estimator interpolating inside the empty
			// [2, 1000] gap is "wrong" by value while exact by rank, so
			// there we check rank error instead.
			if name == "bimodal-gap" && q == 0.50 {
				rank := float64(sort.SearchFloat64s(sorted, got)) / float64(n)
				if math.Abs(rank-q) > 0.01 {
					t.Errorf("%s q=%v: rank of estimate off by %v", name, q, rank-q)
				}
				continue
			}
			if relErr(got, want) > 0.01 {
				t.Errorf("%s q=%v: sketch %v vs exact %v (rel err %.4f)",
					name, q, got, want, relErr(got, want))
			}
		}
	}
}

// TestTDigestExtremesExact: min and max are tracked outside the centroids
// and returned exactly at q=0 and q=1.
func TestTDigestExtremesExact(t *testing.T) {
	d := NewTDigest(100)
	rng := rand.New(rand.NewSource(3))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 10_000; i++ {
		x := rng.NormFloat64() * 50
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
		d.Add(x)
	}
	if d.Min() != lo || d.Max() != hi {
		t.Fatalf("min/max %v/%v, want %v/%v", d.Min(), d.Max(), lo, hi)
	}
	if d.Quantile(0) != lo || d.Quantile(1) != hi {
		t.Fatalf("Q(0)/Q(1) = %v/%v, want exact extremes %v/%v",
			d.Quantile(0), d.Quantile(1), lo, hi)
	}
}

// TestTDigestMergeMatchesSingle: a digest built by merging shards must
// agree with one built from the whole stream to well within the accuracy
// budget, and Merge must leave the source usable.
func TestTDigestMergeMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	whole := NewTDigest(DefaultCompression)
	shards := make([]*TDigest, 8)
	for i := range shards {
		shards[i] = NewTDigest(DefaultCompression)
	}
	var xs []float64
	for i := 0; i < 80_000; i++ {
		x := rng.ExpFloat64() * 3
		xs = append(xs, x)
		whole.Add(x)
		shards[i%len(shards)].Add(x)
	}
	merged := NewTDigest(DefaultCompression)
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.N() != whole.N() {
		t.Fatalf("merged N %d, want %d", merged.N(), whole.N())
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if e := relErr(merged.Quantile(q), exactQuantile(xs, q)); e > 0.01 {
			t.Errorf("merged q=%v: rel err %.4f vs exact", q, e)
		}
	}
	// Source shards survive a Merge: they can still answer queries.
	if shards[0].N() == 0 || shards[0].Quantile(0.5) <= 0 {
		t.Error("Merge consumed its source shard")
	}
}

// TestTDigestDeterministic: equal push sequences and equal merge orders
// yield bit-identical quantiles — the property the parallel harness's
// byte-identity guarantee rests on.
func TestTDigestDeterministic(t *testing.T) {
	build := func() *TDigest {
		rng := rand.New(rand.NewSource(23))
		a, b := NewTDigest(200), NewTDigest(200)
		for i := 0; i < 30_000; i++ {
			x := rng.NormFloat64()
			if i%3 == 0 {
				b.Add(x)
			} else {
				a.Add(x)
			}
		}
		a.Merge(b)
		return a
	}
	x, y := build(), build()
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.95, 0.99, 1} {
		if x.Quantile(q) != y.Quantile(q) {
			t.Fatalf("q=%v diverged: %v vs %v", q, x.Quantile(q), y.Quantile(q))
		}
	}
}

// TestTDigestBoundedMemory: the whole point — centroid count stays a
// small multiple of the compression no matter how many samples stream in.
func TestTDigestBoundedMemory(t *testing.T) {
	d := NewTDigest(100)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500_000; i++ {
		d.Add(rng.Float64())
	}
	d.compact()
	if c := d.Centroids(); c > 200 {
		t.Fatalf("%d centroids retained for compression 100", c)
	}
}

func TestTDigestEdgeCases(t *testing.T) {
	d := NewTDigest(50)
	if d.Quantile(0.5) != 0 || d.N() != 0 {
		t.Fatal("empty digest must report zero")
	}
	d.Add(42)
	for _, q := range []float64{0, 0.5, 1} {
		if d.Quantile(q) != 42 {
			t.Fatalf("single-sample Q(%v) = %v", q, d.Quantile(q))
		}
	}
	c := d.Clone()
	c.Add(100)
	if d.N() != 1 || c.N() != 2 {
		t.Fatal("Clone shares state with its source")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range quantile did not panic")
			}
		}()
		d.Quantile(1.5)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("tiny compression did not panic")
			}
		}()
		NewTDigest(1)
	}()
}
