// t-digest: a mergeable, bounded-memory quantile sketch (Dunning &
// Ertl's merging variant). The harness uses it as the default percentile
// backend so million-CS runs keep constant memory per accumulator; exact
// retention (Accumulator.Retain) remains available as the fallback when
// exact order statistics matter more than memory.
//
// Determinism: every operation is a fixed sequence of float64 operations
// over deterministically ordered inputs (buffers are sorted before each
// compaction, centroid lists are kept sorted by mean), so equal push
// sequences — and equal merge orders — produce bit-identical digests.
// The parallel harness merges per-repetition digests strictly in
// repetition order, which is what keeps Workers=1 and Workers=N
// byte-identical.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// DefaultCompression is the centroid budget parameter δ used by
// accumulators that enable Sketch mode. Memory is O(δ); quantile error
// concentrates near the median at roughly q(1-q)/δ of rank, far below 1%
// relative value error on the latency distributions the harness digests.
const DefaultCompression = 400

// TDigest is a mergeable quantile sketch. The zero value is not usable;
// construct with NewTDigest.
type TDigest struct {
	compression float64
	// Merged centroids, sorted by mean.
	means   []float64
	weights []float64
	total   float64 // sum of weights
	// Unmerged points buffered until the next compaction.
	buf      []float64
	min, max float64
	count    int64
	// Spare centroid arrays mergeSorted rebuilds into; they swap with
	// means/weights after each pass so steady-state compactions reuse
	// the same two backing arrays instead of allocating fresh ones.
	scratchM []float64
	scratchW []float64
}

// NewTDigest returns an empty digest with the given compression δ (the
// maximum number of retained centroids is a small multiple of δ).
func NewTDigest(compression float64) *TDigest {
	if compression < 10 {
		panic(fmt.Sprintf("stats: t-digest compression %v too small", compression))
	}
	return &TDigest{compression: compression}
}

// Add inserts one sample.
func (t *TDigest) Add(x float64) {
	if t.count == 0 {
		t.min, t.max = x, x
	} else {
		if x < t.min {
			t.min = x
		}
		if x > t.max {
			t.max = x
		}
	}
	t.count++
	t.buf = append(t.buf, x)
	if len(t.buf) >= int(8*t.compression) {
		t.compact()
	}
}

// N returns the number of samples added.
func (t *TDigest) N() int64 { return t.count }

// Min and Max return the exact extremes (tracked outside the centroids).
func (t *TDigest) Min() float64 { return t.min }
func (t *TDigest) Max() float64 { return t.max }

// k is the scale function k1(q) = δ/(2π)·asin(2q−1): it allots small
// centroids near both tails, which is what keeps P95/P99 accurate.
func (t *TDigest) k(q float64) float64 {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	return t.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

// kInv inverts k1.
func (t *TDigest) kInv(k float64) float64 {
	q := (math.Sin(2*math.Pi*k/t.compression) + 1) / 2
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// compact folds the buffer into the centroid list with the standard
// single-pass merge: walk all points in mean order, greedily growing the
// current centroid while it stays within the k-size budget of its
// quantile range.
func (t *TDigest) compact() {
	if len(t.buf) == 0 {
		return
	}
	sort.Float64s(t.buf)
	t.mergeSorted(t.buf, nil)
	t.buf = t.buf[:0]
}

// mergeSorted merges the existing centroids with a sorted stream of extra
// points — xs with unit weight (ws nil), or weighted centroids ws[i] —
// rebuilding the centroid list in one pass.
func (t *TDigest) mergeSorted(xs []float64, ws []float64) {
	total := t.total + float64(len(xs))
	if ws != nil {
		total = t.total
		for _, w := range ws {
			total += w
		}
	}
	oldMeans, oldWeights := t.means, t.weights
	outMeans := t.scratchM[:0]
	outWeights := t.scratchW[:0]

	// next pulls the smallest-mean point from the two sorted streams;
	// ties prefer the existing centroids, a fixed deterministic order.
	i, j := 0, 0
	next := func() (float64, float64) {
		wj := 1.0
		if ws != nil && j < len(ws) {
			wj = ws[j]
		}
		if i < len(oldMeans) && (j >= len(xs) || oldMeans[i] <= xs[j]) {
			m, w := oldMeans[i], oldWeights[i]
			i++
			return m, w
		}
		m := xs[j]
		j++
		return m, wj
	}

	n := len(oldMeans) + len(xs)
	curMean, curWeight := next()
	wSoFar := 0.0
	limit := total * t.kInv(t.k(0)+1)
	for p := 1; p < n; p++ {
		m, w := next()
		if wSoFar+curWeight+w <= limit {
			// Grow the current centroid.
			curWeight += w
			curMean += w * (m - curMean) / curWeight
			continue
		}
		outMeans = append(outMeans, curMean)
		outWeights = append(outWeights, curWeight)
		wSoFar += curWeight
		limit = total * t.kInv(t.k(wSoFar/total)+1)
		curMean, curWeight = m, w
	}
	outMeans = append(outMeans, curMean)
	outWeights = append(outWeights, curWeight)
	t.scratchM, t.scratchW = oldMeans, oldWeights
	t.means, t.weights, t.total = outMeans, outWeights, total
}

// Merge folds other into t. Both digests are compacted first; other is
// unchanged.
func (t *TDigest) Merge(other *TDigest) {
	if other == nil || other.count == 0 {
		return
	}
	other.compact()
	t.compact()
	if t.count == 0 {
		t.min, t.max = other.min, other.max
	} else {
		if other.min < t.min {
			t.min = other.min
		}
		if other.max > t.max {
			t.max = other.max
		}
	}
	t.count += other.count
	t.mergeSorted(other.means, other.weights)
}

// Quantile returns the estimated q-quantile (0 <= q <= 1) by linear
// interpolation between centroid centers, anchored at the exact min and
// max. It panics on an out-of-range q and returns 0 on an empty digest.
func (t *TDigest) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	if t.count == 0 {
		return 0
	}
	t.compact()
	means, weights := t.means, t.weights
	if len(means) == 1 {
		return means[0]
	}
	target := q * t.total
	// Cumulative weight at the center of centroid i.
	cum := 0.0
	prevCenter, prevMean := 0.0, t.min
	for i := range means {
		center := cum + weights[i]/2
		if target < center {
			if center == prevCenter {
				return means[i]
			}
			frac := (target - prevCenter) / (center - prevCenter)
			return prevMean + frac*(means[i]-prevMean)
		}
		cum += weights[i]
		prevCenter, prevMean = center, means[i]
	}
	// Beyond the last centroid center: interpolate toward the exact max.
	if t.total == prevCenter {
		return t.max
	}
	frac := (target - prevCenter) / (t.total - prevCenter)
	return prevMean + frac*(t.max-prevMean)
}

// Centroids returns the number of retained centroids plus buffered points
// — the sketch's memory footprint in entries.
func (t *TDigest) Centroids() int { return len(t.means) + len(t.buf) }

// Clone returns an independent deep copy.
func (t *TDigest) Clone() *TDigest {
	c := *t
	c.means = append([]float64(nil), t.means...)
	c.weights = append([]float64(nil), t.weights...)
	c.buf = append([]float64(nil), t.buf...)
	c.scratchM, c.scratchW = nil, nil // never share backing arrays
	return &c
}
