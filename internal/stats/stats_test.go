package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestEmptyAccumulator(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Std() != 0 || a.RelStd() != 0 {
		t.Fatal("empty accumulator not zeroed")
	}
	s := a.Summarize()
	if s.N != 0 || s.PercentilesComputed {
		t.Fatalf("empty summary: %+v", s)
	}
	e := Accumulator{Retain: true}
	if s := e.Summarize(); s.PercentilesComputed {
		t.Fatalf("empty retaining summary claims percentiles: %+v", s)
	}
}

func TestKnownValues(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Push(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if !almostEqual(a.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if !almostEqual(a.Var(), 32.0/7.0, 1e-12) {
		t.Errorf("Var = %v, want %v", a.Var(), 32.0/7.0)
	}
	if !almostEqual(a.RelStd(), a.Std()/5, 1e-12) {
		t.Errorf("RelStd = %v", a.RelStd())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
}

func TestSingleSample(t *testing.T) {
	a := Accumulator{Retain: true}
	a.Push(42)
	if a.Std() != 0 {
		t.Errorf("Std of one sample = %v", a.Std())
	}
	if a.Percentile(0.5) != 42 || a.Percentile(0) != 42 || a.Percentile(1) != 42 {
		t.Error("percentiles of one sample should all be that sample")
	}
}

func TestPercentiles(t *testing.T) {
	a := Accumulator{Retain: true}
	for i := 1; i <= 100; i++ {
		a.Push(float64(i))
	}
	if got := a.Percentile(0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := a.Percentile(1); got != 100 {
		t.Errorf("P100 = %v", got)
	}
	if got := a.Percentile(0.5); !almostEqual(got, 50.5, 1e-9) {
		t.Errorf("P50 = %v, want 50.5", got)
	}
	if got := a.Percentile(0.95); !almostEqual(got, 95.05, 1e-9) {
		t.Errorf("P95 = %v, want 95.05", got)
	}
}

func TestPercentileUnsortedInput(t *testing.T) {
	a := Accumulator{Retain: true}
	for _, x := range []float64{9, 1, 5, 3, 7} {
		a.Push(x)
	}
	if got := a.Percentile(0.5); got != 5 {
		t.Errorf("median of {1,3,5,7,9} = %v", got)
	}
	// Pushing after a percentile query must invalidate the sorted cache.
	a.Push(0)
	if got := a.Percentile(0); got != 0 {
		t.Errorf("P0 after new push = %v, want 0", got)
	}
}

// TestCompactByDefault: the zero-value accumulator retains nothing —
// constant memory — and refuses percentile queries.
func TestCompactByDefault(t *testing.T) {
	var a Accumulator
	for i := 0; i < 1000; i++ {
		a.Push(float64(i))
	}
	if !almostEqual(a.Mean(), 499.5, 1e-9) {
		t.Errorf("Mean = %v", a.Mean())
	}
	if a.samples != nil {
		t.Errorf("compact accumulator retained %d samples", len(a.samples))
	}
	if s := a.Summarize(); s.PercentilesComputed {
		t.Errorf("compact summary claims percentiles: %+v", s)
	}
	defer func() {
		if recover() == nil {
			t.Error("Percentile in compact mode did not panic")
		}
	}()
	a.Percentile(0.5)
}

func TestPercentileRangePanics(t *testing.T) {
	a := Accumulator{Retain: true}
	a.Push(1)
	for _, p := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v) did not panic", p)
				}
			}()
			a.Percentile(p)
		}()
	}
}

func TestSummarize(t *testing.T) {
	a := Accumulator{Retain: true}
	for i := 1; i <= 10; i++ {
		a.Push(float64(i))
	}
	s := a.Summarize()
	if s.N != 10 || !s.PercentilesComputed {
		t.Fatalf("summary %+v", s)
	}
	if !almostEqual(s.Mean, 5.5, 1e-12) || !almostEqual(s.P50, 5.5, 1e-9) {
		t.Errorf("summary %+v", s)
	}
}

func TestMerge(t *testing.T) {
	a := Accumulator{Retain: true}
	b := Accumulator{Retain: true}
	all := Accumulator{Retain: true}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		x := rng.NormFloat64()*3 + 10
		all.Push(x)
		if i%2 == 0 {
			a.Push(x)
		} else {
			b.Push(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if !almostEqual(a.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged mean %v vs %v", a.Mean(), all.Mean())
	}
	if !almostEqual(a.Var(), all.Var(), 1e-9) {
		t.Errorf("merged var %v vs %v", a.Var(), all.Var())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Error("merged min/max wrong")
	}
	if !almostEqual(a.Percentile(0.5), all.Percentile(0.5), 1e-9) {
		t.Error("merged percentile wrong")
	}
}

func TestMergeEmptyCases(t *testing.T) {
	var a, b Accumulator
	a.Merge(&b) // both empty
	if a.N() != 0 {
		t.Fatal("merging empties created samples")
	}
	b.Push(3)
	a.Merge(&b)
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatal("merge into empty failed")
	}
	var c Accumulator
	a.Merge(&c) // merge empty into non-empty
	if a.N() != 1 {
		t.Fatal("merging empty changed N")
	}
}

func TestMergeCompactPoisons(t *testing.T) {
	a := Accumulator{Retain: true}
	a.Push(1)
	var b Accumulator
	b.Push(2)
	a.Merge(&b)
	if a.Retain || a.samples != nil {
		t.Fatal("merge with a compact side should drop retention")
	}
	// Merging a retaining accumulator into an empty compact one must not
	// resurrect retention either: the empty side never retained.
	var c Accumulator
	d := Accumulator{Retain: true}
	d.Push(3)
	c.Merge(&d)
	if c.Retain || c.samples != nil {
		t.Fatal("merge into empty compact accumulator kept samples")
	}
	if c.N() != 1 || c.Mean() != 3 {
		t.Fatalf("merge into empty compact accumulator lost moments: n=%d mean=%v", c.N(), c.Mean())
	}
}

// TestMergePreservesSourceSamples: Merge must copy, not alias, the other
// side's samples when folding into an empty accumulator, and must leave
// the source usable.
func TestMergePreservesSourceSamples(t *testing.T) {
	a := Accumulator{Retain: true}
	b := Accumulator{Retain: true}
	for _, x := range []float64{3, 1, 2} {
		b.Push(x)
	}
	a.Merge(&b)
	if got := a.Percentile(0.5); got != 2 {
		t.Fatalf("merged median = %v", got)
	}
	// Sorting a's samples during the percentile query must not reorder
	// b's retained slice.
	if b.samples[0] != 3 || b.samples[1] != 1 || b.samples[2] != 2 {
		t.Fatalf("merge aliased source samples: %v", b.samples)
	}
}

// Property: Welford matches the naive two-pass computation.
func TestPropertyMatchesNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var a Accumulator
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
			a.Push(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(len(xs))
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		va := 0.0
		if len(xs) > 1 {
			va = m2 / float64(len(xs)-1)
		}
		return almostEqual(a.Mean(), mean, 1e-6*(1+math.Abs(mean))) &&
			almostEqual(a.Var(), va, 1e-5*(1+va))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: merging any split equals pushing everything into one
// accumulator.
func TestPropertyMergeEquivalence(t *testing.T) {
	f := func(raw []int16, cut uint8) bool {
		var whole, left, right Accumulator
		k := 0
		if len(raw) > 0 {
			k = int(cut) % (len(raw) + 1)
		}
		for i, r := range raw {
			x := float64(r)
			whole.Push(x)
			if i < k {
				left.Push(x)
			} else {
				right.Push(x)
			}
		}
		left.Merge(&right)
		return left.N() == whole.N() &&
			almostEqual(left.Mean(), whole.Mean(), 1e-6*(1+math.Abs(whole.Mean()))) &&
			almostEqual(left.Var(), whole.Var(), 1e-5*(1+whole.Var()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJainIndex(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
		eps  float64
	}{
		{"empty", nil, 1, 0},
		{"all zero", []float64{0, 0}, 1, 0},
		{"equal", []float64{5, 5, 5, 5}, 1, 1e-12},
		{"one dominates", []float64{0, 0, 0, 10}, 0.25, 1e-12},
		{"two of four", []float64{1, 1, 0, 0}, 0.5, 1e-12},
	}
	for _, c := range cases {
		if got := JainIndex(c.xs); math.Abs(got-c.want) > c.eps {
			t.Errorf("%s: JainIndex = %v, want %v", c.name, got, c.want)
		}
	}
}

// Property: Jain's index is scale-invariant and within (0, 1].
func TestPropertyJainIndexBounds(t *testing.T) {
	f := func(raw []uint16, scale uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		k := float64(scale%9) + 1
		for i, r := range raw {
			xs[i] = float64(r)
			scaled[i] = k * xs[i]
		}
		j := JainIndex(xs)
		if j <= 0 || j > 1+1e-12 {
			return false
		}
		return math.Abs(j-JainIndex(scaled)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCI95Half(t *testing.T) {
	if CI95Half(nil) != 0 || CI95Half([]float64{5}) != 0 {
		t.Fatal("CI of <2 samples must be 0")
	}
	// Identical samples: zero-width interval.
	if got := CI95Half([]float64{3, 3, 3, 3}); got != 0 {
		t.Fatalf("CI of constant data = %v", got)
	}
	// Two samples {0, 2}: mean 1, s = sqrt(2), t(1) = 12.706.
	want := 12.706 * math.Sqrt2 / math.Sqrt(2)
	if got := CI95Half([]float64{0, 2}); !almostEqual(got, want, 1e-9) {
		t.Fatalf("CI = %v, want %v", got, want)
	}
	// More samples narrow the interval.
	wide := CI95Half([]float64{0, 2, 0, 2})
	wider := CI95Half([]float64{0, 2})
	if wide >= wider {
		t.Fatalf("CI did not narrow: %v vs %v", wide, wider)
	}
	// Large n uses the normal critical value.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i % 2)
	}
	got := CI95Half(big)
	s := 0.5025189076296064 // sample std of alternating 0/1 over 100
	if !almostEqual(got, 1.96*s/10, 1e-3) {
		t.Fatalf("large-n CI = %v", got)
	}
}

// TestMergeSortedFlagInvalidation: a percentile query sorts the retained
// samples; a subsequent Merge must invalidate that order so the next
// query re-sorts over the combined set.
func TestMergeSortedFlagInvalidation(t *testing.T) {
	a := Accumulator{Retain: true}
	for _, x := range []float64{5, 1, 9} {
		a.Push(x)
	}
	if got := a.Percentile(0.5); got != 5 { // sorts [1 5 9]
		t.Fatalf("median before merge = %v", got)
	}
	b := Accumulator{Retain: true}
	for _, x := range []float64{2, 3} {
		b.Push(x)
	}
	a.Merge(&b) // appends [2 3] after the sorted run
	if got := a.Percentile(0.5); got != 3 { // must re-sort [1 2 3 5 9]
		t.Fatalf("median after merge = %v, want 3", got)
	}
	// Push after a query must invalidate too.
	a.Push(0)
	if got := a.Percentile(0); got != 0 {
		t.Fatalf("min percentile after push = %v, want 0", got)
	}
}

// TestSketchMode: the t-digest backend answers percentiles without
// retaining samples, and the mode survives only sketch↔sketch merges.
func TestSketchMode(t *testing.T) {
	a := Accumulator{Sketch: true}
	for i := 1; i <= 1000; i++ {
		a.Push(float64(i))
	}
	if a.samples != nil {
		t.Fatal("sketch mode retained raw samples")
	}
	if got := a.Percentile(0.5); relErr(got, 500.5) > 0.01 {
		t.Fatalf("sketch median = %v, want ~500.5", got)
	}
	s := a.Summarize()
	if !s.PercentilesComputed || s.P50 == 0 || s.P99 == 0 {
		t.Fatalf("Summarize skipped sketch percentiles: %+v", s)
	}

	// sketch ← compact drops the sketch (incomplete sample set).
	var compact Accumulator
	compact.Push(7)
	b := Accumulator{Sketch: true}
	b.Push(1)
	b.Merge(&compact)
	if b.Sketch || b.digest != nil {
		t.Fatal("merge with a compact side kept the sketch")
	}

	// compact ← sketch must not resurrect sketching either.
	var c Accumulator
	d := Accumulator{Sketch: true}
	d.Push(3)
	c.Merge(&d)
	if c.Sketch || c.digest != nil {
		t.Fatal("merge into compact accumulator kept a digest")
	}
	if c.N() != 1 || c.Mean() != 3 {
		t.Fatal("moments lost in compact ← sketch merge")
	}

	// sketch ← sketch keeps answering, and the empty-destination path
	// deep-copies: growing the source later must not leak into the copy.
	var e Accumulator
	e.Sketch = true
	f := Accumulator{Sketch: true}
	for i := 0; i < 100; i++ {
		f.Push(float64(i))
	}
	e.Merge(&f)
	before := e.Percentile(0.5)
	for i := 0; i < 100; i++ {
		f.Push(1e6)
	}
	if got := e.Percentile(0.5); got != before {
		t.Fatalf("merge aliased the source digest: %v then %v", before, got)
	}
	g := Accumulator{Sketch: true}
	for i := 100; i < 200; i++ {
		g.Push(float64(i))
	}
	e.Merge(&g)
	if e.N() != 200 {
		t.Fatalf("merged N = %d", e.N())
	}
	if got := e.Percentile(0.5); relErr(got, 99.5) > 0.02 {
		t.Fatalf("merged sketch median = %v, want ~99.5", got)
	}

	// Retain wins when both backends are on: percentiles are exact.
	h := Accumulator{Retain: true, Sketch: true}
	for _, x := range []float64{9, 1, 5} {
		h.Push(x)
	}
	if got := h.Percentile(0.5); got != 5 {
		t.Fatalf("Retain+Sketch median = %v, want exact 5", got)
	}
}

// TestCI95HalfBoundary pins the Student-t table edge: dof 30 is the last
// table entry (2.042), dof 31 falls back to the normal value 1.96.
func TestCI95HalfBoundary(t *testing.T) {
	std := func(xs []float64) float64 {
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		return math.Sqrt(m2 / float64(len(xs)-1))
	}
	mk := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i % 3)
		}
		return xs
	}
	at := func(n int, tcrit float64) {
		t.Helper()
		xs := mk(n)
		want := tcrit * std(xs) / math.Sqrt(float64(n))
		if got := CI95Half(xs); !almostEqual(got, want, 1e-9) {
			t.Errorf("n=%d: CI %v, want %v (t=%v)", n, got, want, tcrit)
		}
	}
	at(31, 2.042) // dof 30: last table entry
	at(32, 1.96)  // dof 31: normal approximation
}
