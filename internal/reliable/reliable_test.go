package reliable

import (
	"testing"
	"testing/quick"
	"time"

	"gridmutex/internal/check"
	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/mutex"
	"gridmutex/internal/simnet"
	"gridmutex/internal/topology"
	"gridmutex/internal/workload"
)

type note struct{ seq int }

func (note) Kind() string { return "note" }
func (note) Size() int    { return 8 }

type sink struct {
	got []note
}

func (s *sink) Deliver(from mutex.ID, m mutex.Message) { s.got = append(s.got, m.(note)) }

// lossyPair builds a 2-process reliable network over a lossy simulated
// fabric.
func lossyPair(loss float64, seed int64) (*des.Simulator, *Network, *sink) {
	sim := des.New()
	grid := topology.Single(2, 10*time.Millisecond)
	inner := simnet.New(sim, grid, simnet.Options{Loss: loss, Seed: seed})
	rel := Wrap(inner, sim, Options{RTO: 30 * time.Millisecond})
	s := &sink{}
	rel.RegisterAt(0, 0, &sink{})
	rel.RegisterAt(1, 1, s)
	return sim, rel, s
}

func TestInOrderDeliveryUnderHeavyLoss(t *testing.T) {
	sim, rel, s := lossyPair(0.4, 3)
	ep := rel.Endpoint(0)
	const k = 200
	for i := 0; i < k; i++ {
		i := i
		sim.At(des.Time(i)*time.Millisecond, func() { ep.Send(1, note{seq: i}) })
	}
	if err := sim.RunCapped(1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(s.got) != k {
		t.Fatalf("delivered %d, want %d (stats %+v)", len(s.got), k, rel.Stats())
	}
	for i, m := range s.got {
		if m.seq != i {
			t.Fatalf("position %d has seq %d — reordered or lost", i, m.seq)
		}
	}
	st := rel.Stats()
	if st.Retransmits == 0 {
		t.Error("40% loss produced no retransmissions")
	}
	if st.GivenUp != 0 {
		t.Errorf("%d packets abandoned despite retries", st.GivenUp)
	}
	if !rel.Quiesced() {
		t.Errorf("unacknowledged packets remain: %v", rel.PendingSeqs(0, 1))
	}
}

func TestNoLossNoRetransmits(t *testing.T) {
	sim, rel, s := lossyPair(0, 1)
	ep := rel.Endpoint(0)
	for i := 0; i < 50; i++ {
		ep.Send(1, note{seq: i})
	}
	sim.Run()
	if len(s.got) != 50 {
		t.Fatalf("delivered %d", len(s.got))
	}
	st := rel.Stats()
	if st.Retransmits != 0 || st.Duplicates != 0 {
		t.Errorf("clean link produced %d retransmits, %d dups", st.Retransmits, st.Duplicates)
	}
	if st.DataSent != 50 || st.AcksSent != 50 {
		t.Errorf("stats %+v", st)
	}
}

func TestGivesUpOnDeadLink(t *testing.T) {
	sim, rel, s := lossyPair(0.999999, 5) // effectively dead
	// Make loss certain by using a fresh network with Loss just under 1.
	ep := rel.Endpoint(0)
	ep.Send(1, note{seq: 0})
	if err := sim.RunCapped(1_000_000); err != nil {
		t.Fatal(err)
	}
	st := rel.Stats()
	if st.GivenUp == 0 && len(s.got) == 0 {
		t.Errorf("dead link neither delivered nor gave up: %+v", st)
	}
	if !rel.Quiesced() {
		t.Error("outstanding state retained after giving up")
	}
}

// TestOnLinkFailureCallback: exhausting the retry budget toward a crashed
// node fires the link-failure hook with the unreachable peer and the
// abandoned message.
func TestOnLinkFailureCallback(t *testing.T) {
	sim := des.New()
	grid := topology.Single(2, 10*time.Millisecond)
	inner := simnet.New(sim, grid, simnet.Options{Seed: 4})
	type failure struct {
		to mutex.ID
		m  mutex.Message
	}
	var failures []failure
	rel := Wrap(inner, sim, Options{
		RTO: 20 * time.Millisecond, MaxRetries: 3,
		OnLinkFailure: func(to mutex.ID, m mutex.Message) {
			failures = append(failures, failure{to, m})
		},
	})
	s := &sink{}
	rel.RegisterAt(0, 0, &sink{})
	rel.RegisterAt(1, 1, s)
	inner.Crash(1) // every transmission to node 1 is now discarded
	rel.Endpoint(0).Send(1, note{seq: 7})
	if err := sim.RunCapped(1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(s.got) != 0 {
		t.Fatalf("crashed node received %d messages", len(s.got))
	}
	st := rel.Stats()
	if st.GivenUp != 1 || st.Retransmits != 3 {
		t.Fatalf("stats %+v, want 1 given up after 3 retransmits", st)
	}
	if len(failures) != 1 {
		t.Fatalf("link-failure hook fired %d times, want 1", len(failures))
	}
	if failures[0].to != 1 {
		t.Errorf("failure peer %d, want 1", failures[0].to)
	}
	if m, ok := failures[0].m.(note); !ok || m.seq != 7 {
		t.Errorf("failure message %#v, want note{seq: 7}", failures[0].m)
	}
	if !rel.Quiesced() {
		t.Error("outstanding state retained after giving up")
	}
}

// The end-to-end loss matrix (composition completing at 5% and 20% loss)
// is declarative now: testdata/scenarios/lossy-composition-{5,20}.yaml,
// run by internal/scenario's corpus sweep. The two tests below stay as
// the Go-coded guards: one positive (completion under loss with the
// wrapper) and one negative (stall without it).

// TestComposedDeploymentSurvivesLoss: the full composition completes with
// safety over a 15%-lossy grid once the reliable layer is in place.
func TestComposedDeploymentSurvivesLoss(t *testing.T) {
	sim := des.New()
	grid := topology.Uniform(3, 4, time.Millisecond, 16*time.Millisecond)
	inner := simnet.New(sim, grid, simnet.Options{Loss: 0.15, Seed: 9})
	rel := Wrap(inner, sim, Options{RTO: 60 * time.Millisecond})
	mon := check.NewMonitor(sim)
	runner, err := workload.NewRunner(sim, workload.Params{
		Alpha: 5 * time.Millisecond, Rho: 15, Dist: workload.Exponential,
		CSPerProcess: 8, Seed: 9,
	}, mon)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.BuildComposed(rel, grid, core.Spec{Intra: "naimi", Inter: "naimi"}, runner.Callbacks)
	if err != nil {
		t.Fatal(err)
	}
	runner.Bind(d.Apps)
	runner.Start()
	if err := sim.RunCapped(10_000_000); err != nil {
		t.Fatalf("did not drain: %v (outstanding %d, stats %+v)", err, runner.Outstanding(), rel.Stats())
	}
	mon.AssertQuiescent()
	if !mon.Ok() {
		t.Fatalf("violations under loss: %v", mon.Violations()[0])
	}
	if !runner.Done() {
		t.Fatalf("liveness under loss: %d outstanding", runner.Outstanding())
	}
	st := rel.Stats()
	if st.Retransmits == 0 {
		t.Error("15% loss produced no retransmissions")
	}
	if dropped := inner.Counters().Dropped; dropped == 0 {
		t.Error("loss injection inactive")
	}
	t.Logf("survived: %d data, %d retransmits, %d dups, %d dropped",
		st.DataSent, st.Retransmits, st.Duplicates, inner.Counters().Dropped)
}

// TestComposedDeploymentStallsWithoutReliability documents the assumption:
// the same lossy run without the wrapper does NOT complete (requests or
// tokens vanish).
func TestComposedDeploymentStallsWithoutReliability(t *testing.T) {
	sim := des.New()
	grid := topology.Uniform(3, 4, time.Millisecond, 16*time.Millisecond)
	inner := simnet.New(sim, grid, simnet.Options{Loss: 0.15, Seed: 9})
	runner, err := workload.NewRunner(sim, workload.Params{
		Alpha: 5 * time.Millisecond, Rho: 15, Dist: workload.Exponential,
		CSPerProcess: 8, Seed: 9,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.BuildComposed(inner, grid, core.Spec{Intra: "naimi", Inter: "naimi"}, runner.Callbacks)
	if err != nil {
		t.Fatal(err)
	}
	runner.Bind(d.Apps)
	runner.Start()
	if err := sim.RunCapped(10_000_000); err != nil {
		t.Fatal(err)
	}
	if runner.Done() {
		t.Skip("lucky seed: no critical message was dropped") // extremely unlikely
	}
	// Expected: the run stalls — that is the point being documented.
}

// TestPropertyLossRates: delivery stays exactly-once in-order across random
// loss rates and seeds. Loss is capped at 50% and the retry budget raised
// so that the probability of a packet losing all 21 transmissions (the
// only legitimate failure mode) is below 1e-6 per packet.
func TestPropertyLossRates(t *testing.T) {
	f := func(seed int64, rawLoss uint8) bool {
		loss := float64(rawLoss%51) / 100 // 0% .. 50%
		sim := des.New()
		grid := topology.Single(2, 10*time.Millisecond)
		inner := simnet.New(sim, grid, simnet.Options{Loss: loss, Seed: seed})
		rel := Wrap(inner, sim, Options{RTO: 30 * time.Millisecond, MaxRetries: 20})
		s := &sink{}
		rel.RegisterAt(0, 0, &sink{})
		rel.RegisterAt(1, 1, s)
		ep := rel.Endpoint(0)
		const k = 60
		for i := 0; i < k; i++ {
			i := i
			sim.At(des.Time(i)*time.Millisecond, func() { ep.Send(1, note{seq: i}) })
		}
		if err := sim.RunCapped(2_000_000); err != nil {
			return false
		}
		if len(s.got) != k {
			return false
		}
		for i, m := range s.got {
			if m.seq != i {
				return false
			}
		}
		return rel.Stats().GivenUp == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWrapPanics(t *testing.T) {
	sim := des.New()
	grid := topology.Single(2, time.Millisecond)
	inner := simnet.New(sim, grid, simnet.Options{})
	for name, f := range map[string]func(){
		"nil fabric": func() { Wrap(nil, sim, Options{}) },
		"nil timer":  func() { Wrap(inner, nil, Options{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
	rel := Wrap(inner, sim, Options{})
	rel.RegisterAt(0, 0, &sink{})
	for name, f := range map[string]func(){
		"nil handler":        func() { rel.RegisterAt(1, 1, nil) },
		"duplicate register": func() { rel.RegisterAt(0, 0, &sink{}) },
		"unregistered send":  func() { rel.Endpoint(5).Send(0, note{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPacketMetadata(t *testing.T) {
	p := Packet{Seq: 1, M: note{}}
	if p.Kind() != "note" || p.Size() != (note{}).Size()+8 {
		t.Errorf("packet metadata: %s/%d", p.Kind(), p.Size())
	}
	if (Ack{}).Kind() != "reliable.ack" || (Ack{}).Size() <= 0 {
		t.Error("ack metadata")
	}
}

func TestWallClockTimer(t *testing.T) {
	done := make(chan struct{})
	WallClock().After(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wall clock timer never fired")
	}
}

func TestPendingSeqsAndLocal(t *testing.T) {
	sim := des.New()
	grid := topology.Single(2, 10*time.Millisecond)
	inner := simnet.New(sim, grid, simnet.Options{Loss: 0.999999, Seed: 2})
	rel := Wrap(inner, sim, Options{RTO: time.Hour}) // freeze retransmits
	rel.RegisterAt(0, 0, &sink{})
	rel.RegisterAt(1, 1, &sink{})
	ep := rel.Endpoint(0)
	ep.Send(1, note{seq: 1})
	ep.Send(1, note{seq: 2})
	if got := rel.PendingSeqs(0, 1); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("PendingSeqs = %v", got)
	}
	if rel.PendingSeqs(1, 0) != nil {
		t.Fatal("phantom pending on unused link")
	}
	if rel.Quiesced() {
		t.Fatal("Quiesced with outstanding packets")
	}
	// Local runs on the inner serial context.
	ran := false
	ep.Local(func() { ran = true })
	sim.RunFor(time.Minute)
	if !ran {
		t.Fatal("Local closure never ran")
	}
}

func TestRawMessageOnWrappedFabricPanics(t *testing.T) {
	sim := des.New()
	grid := topology.Single(2, time.Millisecond)
	inner := simnet.New(sim, grid, simnet.Options{})
	rel := Wrap(inner, sim, Options{})
	rel.RegisterAt(0, 0, &sink{})
	// Bypass the wrapper: send a bare message straight at the inner
	// fabric address.
	inner.RegisterAt(1, 1, handlerStub{})
	inner.Endpoint(1).Send(0, note{seq: 1})
	defer func() {
		if recover() == nil {
			t.Error("bare message did not panic the receiver")
		}
	}()
	sim.Run()
}

type handlerStub struct{}

func (handlerStub) Deliver(mutex.ID, mutex.Message) {}

func TestLocalOnUnregisteredPanics(t *testing.T) {
	sim := des.New()
	grid := topology.Single(1, time.Millisecond)
	rel := Wrap(simnet.New(sim, grid, simnet.Options{}), sim, Options{})
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	rel.Endpoint(9).Local(func() {})
}
