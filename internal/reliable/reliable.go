// Package reliable adds per-link sequencing, acknowledgement and
// retransmission on top of any mutex.Fabric, turning a lossy transport
// into the reliable FIFO channel the mutual exclusion algorithms assume.
//
// The paper's implementation runs on raw UDP and implicitly relies on the
// testbed's LAN/WAN links not dropping datagrams; this package makes that
// assumption explicit and dischargeable: wrap the fabric, and every
// message is delivered exactly once, in per-link order, as long as the
// link loses less than every retransmission of a packet.
//
// Protocol: each ordered (sender, receiver) pair carries an independent
// sequence space. Data packets carry a sequence number; the receiver
// delivers in order, buffers out-of-order arrivals, drops duplicates and
// acknowledges cumulatively. Senders retransmit unacknowledged packets on
// a timer with exponential backoff, giving up (and counting it) after
// MaxRetries — at which point the link is considered failed, which the
// algorithms in this repository do not survive by design.
package reliable

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gridmutex/internal/mutex"
)

// Timer schedules a callback after a delay; des.Simulator and the
// wall-clock both satisfy it.
type Timer interface {
	After(d time.Duration, f func())
}

// TimerFunc adapts a function to the Timer interface.
type TimerFunc func(d time.Duration, f func())

// After calls f after d.
func (t TimerFunc) After(d time.Duration, f func()) { t(d, f) }

// WallClock returns a Timer backed by time.AfterFunc, for live fabrics.
func WallClock() Timer {
	//lint:allow desdeterminism WallClock is the live-fabric boundary; DES runs inject the simulator's virtual timer instead
	return TimerFunc(func(d time.Duration, f func()) { time.AfterFunc(d, func() { f() }) })
}

// Options tune the retransmission machinery.
type Options struct {
	// RTO is the initial retransmission timeout; it should exceed the
	// largest round trip of the underlying fabric (default 250ms).
	RTO time.Duration
	// Backoff multiplies the timeout on every retransmission (default 2).
	Backoff float64
	// MaxRetries bounds retransmissions per packet (default 10).
	MaxRetries int
	// OnLinkFailure, when non-nil, is called once per abandoned packet
	// after the retry budget is exhausted — the hook a recovery layer uses
	// to learn that a peer is unreachable. It runs outside the network's
	// lock, on the timer's context.
	OnLinkFailure func(to mutex.ID, m mutex.Message)
}

func (o *Options) fill() {
	if o.RTO <= 0 {
		o.RTO = 250 * time.Millisecond
	}
	if o.Backoff < 1 {
		o.Backoff = 2
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 10
	}
}

// Stats counts protocol activity.
type Stats struct {
	// DataSent counts first transmissions; Retransmits counts resends.
	DataSent, Retransmits int64
	// AcksSent counts acknowledgements.
	AcksSent int64
	// Duplicates counts received data packets that were already
	// delivered; OutOfOrder counts arrivals buffered for reordering.
	Duplicates, OutOfOrder int64
	// GivenUp counts packets abandoned after MaxRetries — a link
	// failure the algorithms cannot mask.
	GivenUp int64
}

// Packet is a sequenced data frame.
type Packet struct {
	Seq uint64
	M   mutex.Message
}

// Kind implements mutex.Message; packets are transparent for tracing.
func (p Packet) Kind() string { return p.M.Kind() }

// Size implements mutex.Message: payload plus the sequence header.
func (p Packet) Size() int { return p.M.Size() + 8 }

// Ack acknowledges every sequence number up to and including Cum.
type Ack struct {
	Cum uint64
}

// Kind implements mutex.Message.
func (Ack) Kind() string { return "reliable.ack" }

// Size implements mutex.Message.
func (Ack) Size() int { return 24 }

type link struct{ from, to mutex.ID }

// sendState tracks one directed link's unacknowledged packets.
type sendState struct {
	nextSeq     uint64
	outstanding map[uint64]mutex.Message
}

// recvState tracks one directed link's delivery frontier.
type recvState struct {
	expected uint64 // next sequence number to deliver
	buffered map[uint64]mutex.Message
}

// Network decorates an unreliable fabric with reliable FIFO links. It
// implements mutex.Fabric.
type Network struct {
	inner mutex.Fabric
	timer Timer
	opts  Options

	mu       sync.Mutex
	sends    map[link]*sendState
	recvs    map[link]*recvState
	handlers map[mutex.ID]mutex.Handler
	envs     map[mutex.ID]mutex.Env // inner endpoints, for acks
	stats    Stats
}

// Wrap builds the reliable layer over inner, scheduling retransmissions
// with timer.
func Wrap(inner mutex.Fabric, timer Timer, opts Options) *Network {
	if inner == nil || timer == nil {
		panic("reliable: nil fabric or timer")
	}
	opts.fill()
	return &Network{
		inner: inner, timer: timer, opts: opts,
		sends:    make(map[link]*sendState),
		recvs:    make(map[link]*recvState),
		handlers: make(map[mutex.ID]mutex.Handler),
		envs:     make(map[mutex.ID]mutex.Env),
	}
}

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// RegisterAt implements mutex.Fabric: the handler is wrapped with the
// receive-side protocol.
func (n *Network) RegisterAt(id mutex.ID, node int, h mutex.Handler) {
	if h == nil {
		panic("reliable: nil handler")
	}
	n.mu.Lock()
	if _, dup := n.handlers[id]; dup {
		n.mu.Unlock()
		panic(fmt.Sprintf("reliable: process %d registered twice", id))
	}
	n.handlers[id] = h
	n.envs[id] = n.inner.Endpoint(id)
	n.mu.Unlock()
	n.inner.RegisterAt(id, node, &receiver{net: n, self: id})
}

// Endpoint implements mutex.Fabric.
func (n *Network) Endpoint(id mutex.ID) mutex.Env {
	return &endpoint{net: n, self: id}
}

type endpoint struct {
	net  *Network
	self mutex.ID
}

func (e *endpoint) Send(to mutex.ID, m mutex.Message) { e.net.send(e.self, to, m) }

func (e *endpoint) Local(f func()) {
	e.net.mu.Lock()
	env := e.net.envs[e.self]
	e.net.mu.Unlock()
	if env == nil {
		panic(fmt.Sprintf("reliable: Local on unregistered process %d", e.self))
	}
	env.Local(f)
}

func (n *Network) send(from, to mutex.ID, m mutex.Message) {
	n.mu.Lock()
	l := link{from, to}
	st := n.sends[l]
	if st == nil {
		st = &sendState{outstanding: make(map[uint64]mutex.Message)}
		n.sends[l] = st
	}
	st.nextSeq++
	seq := st.nextSeq
	st.outstanding[seq] = m
	env := n.envs[from]
	n.stats.DataSent++
	n.mu.Unlock()
	if env == nil {
		panic(fmt.Sprintf("reliable: send from unregistered process %d", from))
	}
	env.Send(to, Packet{Seq: seq, M: m})
	n.scheduleRetransmit(l, seq, n.opts.RTO, 0)
}

// scheduleRetransmit re-sends seq on l until it is acknowledged or the
// retry budget runs out.
func (n *Network) scheduleRetransmit(l link, seq uint64, timeout time.Duration, attempt int) {
	n.timer.After(timeout, func() {
		n.mu.Lock()
		st := n.sends[l]
		m, waiting := st.outstanding[seq]
		if !waiting {
			n.mu.Unlock()
			return // acknowledged in the meantime
		}
		if attempt >= n.opts.MaxRetries {
			delete(st.outstanding, seq)
			n.stats.GivenUp++
			n.mu.Unlock()
			if n.opts.OnLinkFailure != nil {
				n.opts.OnLinkFailure(l.to, m)
			}
			return
		}
		n.stats.Retransmits++
		env := n.envs[l.from]
		n.mu.Unlock()
		env.Send(l.to, Packet{Seq: seq, M: m})
		n.scheduleRetransmit(l, seq, time.Duration(float64(timeout)*n.opts.Backoff), attempt+1)
	})
}

// receiver is the inner-fabric handler installed per process.
type receiver struct {
	net  *Network
	self mutex.ID
}

func (r *receiver) Deliver(from mutex.ID, m mutex.Message) {
	switch msg := m.(type) {
	case Ack:
		r.net.onAck(link{r.self, from}, msg.Cum)
	case Packet:
		r.net.onPacket(from, r.self, msg)
	default:
		panic(fmt.Sprintf("reliable: raw message %T on wrapped fabric", m))
	}
}

// onAck clears acknowledged packets of the sender-side link state. The
// link is keyed (self, from): acks travel opposite to their data.
func (n *Network) onAck(l link, cum uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.sends[l]
	if st == nil {
		return
	}
	for seq := range st.outstanding {
		if seq <= cum {
			delete(st.outstanding, seq)
		}
	}
}

// onPacket runs the receive side: deliver in order, buffer ahead, drop
// duplicates, acknowledge cumulatively.
func (n *Network) onPacket(from, self mutex.ID, p Packet) {
	l := link{from, self}
	n.mu.Lock()
	st := n.recvs[l]
	if st == nil {
		st = &recvState{buffered: make(map[uint64]mutex.Message)}
		n.recvs[l] = st
	}
	var deliver []mutex.Message
	switch {
	case p.Seq == st.expected+1:
		deliver = append(deliver, p.M)
		st.expected++
		for {
			m, ok := st.buffered[st.expected+1]
			if !ok {
				break
			}
			delete(st.buffered, st.expected+1)
			st.expected++
			deliver = append(deliver, m)
		}
	case p.Seq <= st.expected:
		n.stats.Duplicates++
	default:
		if _, dup := st.buffered[p.Seq]; dup {
			n.stats.Duplicates++
		} else {
			st.buffered[p.Seq] = p.M
			n.stats.OutOfOrder++
		}
	}
	cum := st.expected
	h := n.handlers[self]
	env := n.envs[self]
	n.stats.AcksSent++
	n.mu.Unlock()

	// Ack outside the lock; every data packet earns a cumulative ack so
	// lost acks are repaired by the next arrival.
	env.Send(from, Ack{Cum: cum})
	for _, m := range deliver {
		h.Deliver(from, m)
	}
}

// Quiesced reports whether no packet is awaiting acknowledgement — useful
// for draining tests.
func (n *Network) Quiesced() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, st := range n.sends {
		if len(st.outstanding) > 0 {
			return false
		}
	}
	return true
}

// PendingSeqs lists unacknowledged sequence numbers of one link, sorted —
// a debugging aid.
func (n *Network) PendingSeqs(from, to mutex.ID) []uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.sends[link{from, to}]
	if st == nil {
		return nil
	}
	out := make([]uint64, 0, len(st.outstanding))
	for seq := range st.outstanding {
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
