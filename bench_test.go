package gridmutex

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"gridmutex/internal/harness"
	"gridmutex/internal/topology"
)

// metricLabel turns a system name into a whitespace-free benchmark metric
// label ("Naimi (original)" -> "Naimi-original").
func metricLabel(name, unit string) string {
	r := strings.NewReplacer(" (", "-", ")", "", " ", "-")
	return r.Replace(name) + "_" + unit
}

// benchScale is a reduced sweep — one ρ per parallelism regime, one
// repetition — so a full -bench=. pass stays fast while still exercising
// every figure's code path end to end. Regenerating the figures at the
// paper's dimensions is `gridbench -experiment all -scale paper`.
func benchScale() harness.Scale {
	s := harness.QuickScale()
	s.Repetitions = 1
	s.Rhos = []float64{6, 24, 48} // low / intermediate / high for N=12
	return s
}

// reportFigure runs the systems and reports the chosen metric of the
// highest-ρ point per system, labelled by system name.
func reportFigure(b *testing.B, systems []harness.System, metric harness.Metric, unit string) {
	b.Helper()
	scale := benchScale()
	var res *harness.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.Run(systems, scale, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	rho := scale.Rhos[len(scale.Rhos)-1]
	for _, sys := range systems {
		p := res.Point(sys.Name, rho)
		var v float64
		switch metric {
		case harness.ObtainingMean:
			v = p.Obtaining.Mean
		case harness.ObtainingStd:
			v = p.Obtaining.Std
		case harness.ObtainingRelStd:
			v = p.Obtaining.RelStd
		case harness.InterMsgs:
			v = p.InterMsgsPerCS
		}
		b.ReportMetric(v, metricLabel(sys.Name, unit))
	}
}

// BenchmarkParallelHarness measures the fig4a experiment grid at each
// fan-out width. On a single core the interesting number is the overhead
// of the pool (should be ~none); on a multi-core box the per-op time
// should drop with workers.
func BenchmarkParallelHarness(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			scale := benchScale()
			scale.Repetitions = 2
			scale.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := harness.Run(harness.CompositionSystems(), scale, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3LatencyMatrix regenerates the encoded Figure 3 table.
func BenchmarkFig3LatencyMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if harness.Figure3Table() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig4aObtainingTime regenerates Figure 4(a): obtaining time of
// the original algorithm vs the three compositions.
func BenchmarkFig4aObtainingTime(b *testing.B) {
	reportFigure(b, harness.CompositionSystems(), harness.ObtainingMean, "ms")
}

// BenchmarkFig4bInterMessages regenerates Figure 4(b): inter-cluster
// messages per critical section.
func BenchmarkFig4bInterMessages(b *testing.B) {
	reportFigure(b, harness.CompositionSystems(), harness.InterMsgs, "msgs/CS")
}

// BenchmarkFig5aStdDev regenerates Figure 5(a): σ of the obtaining time.
func BenchmarkFig5aStdDev(b *testing.B) {
	reportFigure(b, harness.CompositionSystems(), harness.ObtainingStd, "ms")
}

// BenchmarkFig5bRelDev regenerates Figure 5(b): σ/mean.
func BenchmarkFig5bRelDev(b *testing.B) {
	reportFigure(b, harness.CompositionSystems(), harness.ObtainingRelStd, "ratio")
}

// BenchmarkFig6aIntraChoice regenerates Figure 6(a): the intra algorithm's
// (small) influence on the obtaining time.
func BenchmarkFig6aIntraChoice(b *testing.B) {
	reportFigure(b, harness.IntraSystems(), harness.ObtainingMean, "ms")
}

// BenchmarkFig6bIntraRegularity regenerates Figure 6(b): σ per intra
// algorithm (Suzuki's arrival-blind queue shows here).
func BenchmarkFig6bIntraRegularity(b *testing.B) {
	reportFigure(b, harness.IntraSystems(), harness.ObtainingStd, "ms")
}

// BenchmarkScalability regenerates the section 4.7 discussion: messages
// per CS as the grid grows, original vs self-composed algorithms.
func BenchmarkScalability(b *testing.B) {
	scale := benchScale()
	clusters := []int{2, 6}
	var res *harness.ScalabilityResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.RunScalability(harness.ScalabilitySystems(), scale, clusters, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, sys := range harness.ScalabilitySystems() {
		p := res.Point(sys.Name, clusters[len(clusters)-1])
		b.ReportMetric(p.TotalMsgsPerCS, metricLabel(sys.Name, "msgs/CS"))
	}
}

// BenchmarkAdaptive regenerates the section 6 extension: the adaptive
// inter algorithm on a phased workload against the static compositions.
func BenchmarkAdaptive(b *testing.B) {
	scale := benchScale()
	scale.CSPerProcess = 25
	scale.Phases = harness.AdaptivePhases(scale)
	var res *harness.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.RunPhased(harness.AdaptiveSystems(), scale, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range res.Points {
		b.ReportMetric(p.Obtaining.Mean, metricLabel(p.System, "ms"))
		if p.System == "Naimi-Adaptive" {
			b.ReportMetric(float64(p.Switches), "switches")
		}
	}
}

// BenchmarkComposedSendDeliver measures the composed send→deliver hot
// path end to end — a full naimi-naimi cell through simnet and the DES
// queue — and reports raw DES event throughput. This is the number the
// zero-allocation fast path optimizes; pair it with
// `gridbench -cpuprofile` to see where the remaining cycles go.
func BenchmarkComposedSendDeliver(b *testing.B) {
	scale := benchScale()
	scale.Rhos = []float64{24}
	systems := []harness.System{harness.Composed("naimi", "naimi")}
	var events int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(systems, scale, nil)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Points[0].Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkSimulatedCS measures simulator throughput: virtual critical
// sections executed per second of wall time at paper scale.
func BenchmarkSimulatedCS(b *testing.B) {
	scale := harness.PaperScale()
	scale.Repetitions = 1
	scale.Rhos = []float64{180}
	scale.CSPerProcess = 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Run([]harness.System{harness.Composed("naimi", "naimi")}, scale, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(scale.N()*scale.CSPerProcess), "CS/op")
}

// BenchmarkLiveLockUnlock measures the live in-process runtime: wall-clock
// cost of one uncontended Lock/Unlock round trip within a cluster.
func BenchmarkLiveLockUnlock(b *testing.B) {
	g, err := New(Config{Clusters: 2, AppsPerCluster: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	m := g.Mutex(0)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Lock(ctx); err != nil {
			b.Fatal(err)
		}
		m.Unlock()
	}
}

// BenchmarkUDPLockUnlock measures the UDP runtime: one uncontended
// Lock/Unlock over loopback sockets.
func BenchmarkUDPLockUnlock(b *testing.B) {
	g, err := New(Config{Clusters: 2, AppsPerCluster: 2, Transport: UDP})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	m := g.Mutex(0)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Lock(ctx); err != nil {
			b.Fatal(err)
		}
		m.Unlock()
	}
}

// BenchmarkTopologyOneWay measures the latency lookup on the hot path of
// every simulated message.
func BenchmarkTopologyOneWay(b *testing.B) {
	g := topology.Grid5000(21)
	n := g.NumNodes()
	b.ReportAllocs()
	var sink time.Duration
	for i := 0; i < b.N; i++ {
		sink += g.OneWay(i%n, (i*7)%n)
	}
	_ = sink
}

// BenchmarkLocalBias regenerates the Bertier-style local-first ablation:
// obtaining time and handoffs with and without bias under saturation.
func BenchmarkLocalBias(b *testing.B) {
	scale := benchScale()
	scale.Rhos = []float64{6}
	scale.CSPerProcess = 20
	systems := []harness.System{
		harness.Composed("naimi", "naimi"),
		harness.Biased("naimi", "naimi", 8),
	}
	var res *harness.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.Run(systems, scale, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, sys := range systems {
		p := res.Point(sys.Name, 6)
		b.ReportMetric(p.Obtaining.Mean, metricLabel(sys.Name, "ms"))
	}
}
