package gridmutex_test

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gridmutex"
)

// Example shows the smallest useful deployment: a live in-process grid
// whose application processes take a grid-wide lock.
func Example() {
	grid, err := gridmutex.New(gridmutex.Config{
		Clusters:       2,
		AppsPerCluster: 2,
		Intra:          "naimi",
		Inter:          "martin",
	})
	if err != nil {
		panic(err)
	}
	defer grid.Close()

	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < grid.Apps(); i++ {
		m := grid.Mutex(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				if err := m.Lock(context.Background()); err != nil {
					panic(err)
				}
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	fmt.Println(counter)
	// Output: 20
}

// ExampleNew_grid5000 builds a deployment over the paper's measured
// Grid'5000 latencies (scaled 1000x faster for the example).
func ExampleNew_grid5000() {
	grid, err := gridmutex.New(gridmutex.Config{
		Clusters:       9,
		AppsPerCluster: 1,
		Grid5000:       true,
		LatencyScale:   1000,
	})
	if err != nil {
		panic(err)
	}
	defer grid.Close()

	m := grid.Mutex(0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Lock(ctx); err != nil {
		panic(err)
	}
	m.Unlock()
	fmt.Println(grid.Apps(), "processes across", 9, "clusters")
	// Output: 9 processes across 9 clusters
}

// ExampleAlgorithms lists the pluggable algorithms.
func ExampleAlgorithms() {
	for _, a := range gridmutex.Algorithms() {
		fmt.Println(a)
	}
	// Output:
	// central
	// lamport
	// martin
	// naimi
	// raymond
	// ricart-agrawala
	// suzuki
}

// ExampleDescribeFigure shows the experiment catalogue.
func ExampleDescribeFigure() {
	d, err := gridmutex.DescribeFigure("fig4b")
	if err != nil {
		panic(err)
	}
	fmt.Println(d)
	// Output: inter-cluster messages per CS vs rho
}
